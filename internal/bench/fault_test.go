package bench

// Machine-level fault injection: the full §3.3 attack/detect/revoke
// sequence running against an assembled multi-guest machine under load.

import (
	"testing"

	"cdna/internal/core"
	"cdna/internal/sim"
)

func buildTwoGuests(t *testing.T, prot core.Mode) (*Machine, Config) {
	t.Helper()
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Guests = 2
	cfg.NICs = 1
	cfg.ConnsPerGuestPerNIC = 4
	cfg.Protection = prot
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Conns.Conns {
		c.Start()
	}
	return m, cfg
}

func TestMidRunForeignEnqueueRejected(t *testing.T) {
	m, _ := buildTwoGuests(t, core.ModeHypercall)
	attacker := m.Drivers[0]
	victimDom := m.Hyp.Domains()[2] // dom0, guest1, guest2
	m.Eng.Run(50 * sim.Millisecond)
	page := m.Mem.AllocOne(victimDom.ID)
	var got error
	attacker.AttackForeignEnqueue(page.Base(), func(err error) { got = err })
	m.Eng.Run(80 * sim.Millisecond)
	if got != core.ErrForeignMemory {
		t.Fatalf("attack result = %v, want ErrForeignMemory", got)
	}
	// The attacker keeps working after a *rejected* hypercall (it is an
	// error return, not a fault).
	if attacker.Ctx.Faulted {
		t.Fatal("rejected enqueue must not revoke the context")
	}
}

func TestMidRunStaleReplayRevokesOnlyAttacker(t *testing.T) {
	m, _ := buildTwoGuests(t, core.ModeHypercall)
	attacker := m.Drivers[0]
	m.Eng.Run(50 * sim.Millisecond)
	attacker.AttackStaleProducer(4)
	m.Eng.Run(120 * sim.Millisecond)

	if !attacker.Ctx.Faulted {
		t.Fatal("stale replay not detected under load")
	}
	if m.Hyp.Faults.Total() == 0 {
		t.Fatal("hypervisor did not handle the fault")
	}
	if m.CtxMgrs[0].Assigned() != 1 {
		t.Fatalf("assigned contexts = %d, want 1 (victim only)", m.CtxMgrs[0].Assigned())
	}

	// Victim throughput continues; attacker stops.
	m.Conns.StartWindow()
	m.Eng.Run(350 * sim.Millisecond)
	var attackerBytes, victimBytes uint64
	for i, c := range m.Conns.Conns {
		if i < 4 {
			attackerBytes += c.Delivered.Window()
		} else {
			victimBytes += c.Delivered.Window()
		}
	}
	if attackerBytes != 0 {
		t.Fatalf("revoked guest still delivered %d bytes", attackerBytes)
	}
	if victimBytes == 0 {
		t.Fatal("victim traffic did not survive the revocation")
	}
	// With the attacker gone the victim can use the whole link.
	mbps := float64(victimBytes) * 8 / 1e6 / 0.230
	if mbps < 700 {
		t.Fatalf("victim only reached %.0f Mb/s after revocation", mbps)
	}
}

func TestProtectionOffReplayUndetected(t *testing.T) {
	m, _ := buildTwoGuests(t, core.ModeOff)
	attacker := m.Drivers[0]
	m.Eng.Run(50 * sim.Millisecond)
	attacker.AttackStaleProducer(4)
	m.Eng.Run(120 * sim.Millisecond)
	if m.RiceNICs[0].E.Faults.Total() != 0 || attacker.Ctx.Faulted {
		t.Fatal("protection-off run must not detect the replay")
	}
	if m.Hyp.Faults.Total() != 0 {
		t.Fatal("hypervisor saw a fault with protection off")
	}
}

// TestRefcountsDrainAfterRun: after traffic stops and rings are reaped,
// no page pins leak (every pinned page is eventually released).
func TestRefcountsDrainAfterRun(t *testing.T) {
	m, _ := buildTwoGuests(t, core.ModeHypercall)
	m.Eng.Run(100 * sim.Millisecond)
	pinned := m.Hyp.Prot.PinnedPages.Total()
	reaped := m.Hyp.Prot.Reaped.Total()
	if pinned == 0 {
		t.Fatal("no pages were ever pinned — protection not exercised")
	}
	if reaped == 0 {
		t.Fatal("no pins were ever reaped")
	}
	// Outstanding pins are bounded by ring capacity (pins are reaped
	// lazily, so "all drained" is not expected; "bounded" is).
	var outstanding int
	for _, d := range m.Drivers {
		outstanding += m.Hyp.Prot.Pins(d.Ctx.TxRing) + m.Hyp.Prot.Pins(d.Ctx.RxRing)
	}
	limit := len(m.Drivers) * 2 * 1024
	if outstanding > limit {
		t.Fatalf("outstanding pins %d exceed ring capacity %d", outstanding, limit)
	}
}
