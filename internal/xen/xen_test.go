package xen

import (
	"testing"

	"cdna/internal/core"
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/ring"
	"cdna/internal/sim"
)

func newHyp(t *testing.T) (*sim.Engine, *Hypervisor) {
	t.Helper()
	eng := sim.New()
	c := cpu.New(eng, cpu.DefaultParams())
	m := mem.New()
	return eng, New(eng, c, m, DefaultParams(), core.ModeHypercall)
}

func TestDomainIDs(t *testing.T) {
	_, h := newHyp(t)
	d0 := h.NewDomain("driver", cpu.KindDriver)
	g1 := h.NewDomain("guest1", cpu.KindGuest)
	g2 := h.NewDomain("guest2", cpu.KindGuest)
	if d0.ID != mem.Dom0 || g1.ID != mem.Dom0+1 || g2.ID != mem.Dom0+2 {
		t.Fatalf("IDs: %d %d %d", d0.ID, g1.ID, g2.ID)
	}
	if len(h.Domains()) != 3 {
		t.Fatalf("Domains = %d", len(h.Domains()))
	}
}

func TestHypercallChargedToHypervisor(t *testing.T) {
	eng, h := newHyp(t)
	g := h.NewDomain("g", cpu.KindGuest)
	h.CPU.StartWindow()
	ran := false
	g.Hypercall(sim.Microsecond, "test", sim.RawFn(func() { ran = true }))
	eng.Run(sim.Millisecond)
	h.CPU.EndWindow()
	if !ran {
		t.Fatal("hypercall did not run")
	}
	p := h.CPU.Profile()
	if p.GuestOS != 0 {
		t.Fatalf("hypercall charged to guest kernel: %+v", p)
	}
	if p.Hyp == 0 {
		t.Fatal("no hypervisor time recorded")
	}
}

func TestEventChannelDeliversAndMerges(t *testing.T) {
	eng, h := newHyp(t)
	g := h.NewDomain("g", cpu.KindGuest)
	count := 0
	ch := h.NewChannel(g, "net", func() { count++ })
	// Three notifies before the domain runs: merged into one delivery.
	ch.Notify()
	ch.Notify()
	ch.Notify()
	eng.Run(sim.Millisecond)
	if count != 1 {
		t.Fatalf("handler ran %d times, want 1 (merged)", count)
	}
	if ch.Merged.Total() != 2 {
		t.Fatalf("Merged = %d", ch.Merged.Total())
	}
	if g.Virqs.Total() != 1 {
		t.Fatalf("Virqs = %d", g.Virqs.Total())
	}
	// After delivery, a new notify is a fresh virtual interrupt.
	ch.Notify()
	eng.Run(2 * sim.Millisecond)
	if count != 2 || g.Virqs.Total() != 2 {
		t.Fatalf("count=%d virqs=%d", count, g.Virqs.Total())
	}
}

func TestNotifyFromGuestChargesSender(t *testing.T) {
	eng, h := newHyp(t)
	g := h.NewDomain("sender", cpu.KindGuest)
	d0 := h.NewDomain("driver", cpu.KindDriver)
	ch := h.NewChannel(d0, "back", func() {})
	h.CPU.StartWindow()
	g.VCPU.Exec(cpu.CatKernel, sim.Microsecond, "work", sim.RawFn(func() {
		ch.NotifyFromGuest(g)
	}))
	eng.Run(sim.Millisecond)
	h.CPU.EndWindow()
	p := h.CPU.Profile()
	if p.Hyp == 0 {
		t.Fatal("evtchn send cost not charged to hypervisor")
	}
	if p.DriverOS == 0 {
		t.Fatal("virq dispatch cost not charged to target kernel")
	}
}

func TestIRQRouting(t *testing.T) {
	eng, h := newHyp(t)
	fired := 0
	irq := h.NewIRQ("nic0", func() { fired++ })
	irq.Raise()
	irq.Raise()
	eng.Run(sim.Millisecond)
	if fired != 2 || h.PhysIRQs.Total() != 2 {
		t.Fatalf("fired=%d counted=%d", fired, h.PhysIRQs.Total())
	}
}

func TestTimersTick(t *testing.T) {
	eng, h := newHyp(t)
	g := h.NewDomain("g", cpu.KindGuest)
	h.StartTimers()
	h.CPU.StartWindow()
	eng.Run(105 * sim.Millisecond)
	h.CPU.EndWindow()
	k, _, _ := g.VCPU.DomainTime()
	// 10 ticks at 2us each = 20us, plus one cold-cache refill (the
	// domain's first-ever dispatch charges CacheRefillCap).
	want := 20*sim.Microsecond + cpu.DefaultParams().CacheRefillCap
	if k < want-2*sim.Microsecond || k > want+2*sim.Microsecond {
		t.Fatalf("tick kernel time = %v, want ~%v", k, want)
	}
}

func TestCDNAEnqueueHypercall(t *testing.T) {
	eng, h := newHyp(t)
	g := h.NewDomain("g", cpu.KindGuest)
	base := h.Mem.AllocOne(g.ID).Base()
	r, _ := ring.New("tx", ring.DefaultLayout, base, 64)
	if err := h.Prot.RegisterRing(g.ID, r, 128); err != nil {
		t.Fatal(err)
	}
	buf := h.Mem.AllocOne(g.ID)
	descs := []ring.Desc{{Addr: buf.Base(), Len: 1514}}
	var gotN int
	var gotErr error
	g.Hypercall(g.CDNAEnqueueCost(descs), "cdna_enqueue", sim.RawFn(func() {
		gotN, gotErr = g.CDNAValidate(r, descs)
	}))
	eng.Run(sim.Millisecond)
	if gotErr != nil || gotN != 1 {
		t.Fatalf("enqueue = %d, %v", gotN, gotErr)
	}
	if r.Avail() != 1 {
		t.Fatal("descriptor not on ring")
	}
}

func TestCDNAEnqueueRejectsForeign(t *testing.T) {
	eng, h := newHyp(t)
	g := h.NewDomain("g", cpu.KindGuest)
	victim := h.NewDomain("victim", cpu.KindGuest)
	base := h.Mem.AllocOne(g.ID).Base()
	r, _ := ring.New("tx", ring.DefaultLayout, base, 64)
	h.Prot.RegisterRing(g.ID, r, 128)
	buf := h.Mem.AllocOne(victim.ID)
	descs := []ring.Desc{{Addr: buf.Base(), Len: 1514}}
	var gotErr error
	g.Hypercall(g.CDNAEnqueueCost(descs), "cdna_enqueue", sim.RawFn(func() {
		_, gotErr = g.CDNAValidate(r, descs)
	}))
	eng.Run(sim.Millisecond)
	if gotErr != core.ErrForeignMemory {
		t.Fatalf("err = %v, want ErrForeignMemory", gotErr)
	}
}

func TestHandleBitVectorIRQ(t *testing.T) {
	eng, h := newHyp(t)
	g1 := h.NewDomain("g1", cpu.KindGuest)
	g2 := h.NewDomain("g2", cpu.KindGuest)
	bvBase := h.Mem.AllocOne(mem.DomHyp).Base()
	q, err := core.NewBitVectorQueue(h.Mem, bvBase, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	channels := make([]*EventChannel, core.NumContexts)
	channels[3] = h.NewChannel(g1, "ctx3", func() { got[3]++ })
	channels[7] = h.NewChannel(g2, "ctx7", func() { got[7]++ })
	q.Accumulate(3)
	q.Accumulate(7)
	q.Post()
	dec := h.NewBitVecDecoder(q, channels)
	irq := h.NewIRQ("cdna", dec.HandleIRQ)
	irq.Raise()
	eng.Run(sim.Millisecond)
	if got[3] != 1 || got[7] != 1 {
		t.Fatalf("deliveries: %v", got)
	}
	if g1.Virqs.Total() != 1 || g2.Virqs.Total() != 1 {
		t.Fatal("virq counters wrong")
	}
}

func TestHandleFaultRevokesContext(t *testing.T) {
	eng, h := newHyp(t)
	g := h.NewDomain("g", cpu.KindGuest)
	tx, _ := ring.New("tx", ring.DefaultLayout, h.Mem.AllocOne(g.ID).Base(), 64)
	rx, _ := ring.New("rx", ring.DefaultLayout, h.Mem.AllocOne(g.ID).Base(), 64)
	ctx, err := h.CtxMgr.Assign(g.ID, ether.MakeMAC(1, 1), tx, rx)
	if err != nil {
		t.Fatal(err)
	}
	h.HandleFault(nil, &core.Fault{ContextID: ctx.ID, Owner: g.ID, Reason: core.FaultSeqMismatch})
	eng.Run(sim.Millisecond)
	if !ctx.Faulted || h.CtxMgr.Assigned() != 0 {
		t.Fatal("fault did not revoke context")
	}
	if h.Faults.Total() != 1 {
		t.Fatalf("Faults = %d", h.Faults.Total())
	}
}
