// Package xen models the Xen VMM as the paper uses it (§2): a hypervisor
// that owns all physical interrupts, delivers virtual interrupts over
// event channels, schedules domains on the shared CPU, and — for CDNA —
// hosts the DMA protection engine and decodes interrupt bit vectors
// (§3.2–3.3).
//
// CPU time for every hypervisor operation is charged through
// internal/cpu so the execution profiles in the paper's tables can be
// reproduced: hypercalls run in the calling domain's context but are
// charged to the hypervisor category, and ISRs run on the global
// interrupt queue.
package xen

import (
	"cdna/internal/core"
	"cdna/internal/cpu"
	"cdna/internal/mem"
	"cdna/internal/ring"
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// faultOp is one fielded-but-unserviced protection fault.
type faultOp struct {
	cm *core.ContextManager
	f  *core.Fault
}

// Params are the hypervisor cost constants. Derivations from the paper's
// tables are documented in internal/bench/params.go, which owns the
// top-level calibration.
type Params struct {
	ISRCost       sim.Time // physical interrupt entry + routing
	BitvecBase    sim.Time // CDNA ISR: drain + decode base cost
	BitvecPerCtx  sim.Time // per set context bit (virq scheduling)
	VirqSend      sim.Time // event-channel notify hypercall (sender side)
	VirqDeliver   sim.Time // event dispatch in the target domain (kernel)
	HypercallBase sim.Time // fixed cost of any hypercall
	CDNAPerDesc   sim.Time // descriptor validation + seq stamp + ring write
	CDNAPerPage   sim.Time // ownership check + refcount per page
	FlipCost      sim.Time // page flip (grant transfer) per packet
	TickPeriod    sim.Time // domain timer tick period (100 Hz)
	TickCost      sim.Time // guest kernel cost per tick
	TickISR       sim.Time // hypervisor timer ISR per tick
}

// DefaultParams returns baseline hypervisor costs.
func DefaultParams() Params {
	return Params{
		ISRCost:       900 * sim.Nanosecond,
		BitvecBase:    300 * sim.Nanosecond,
		BitvecPerCtx:  200 * sim.Nanosecond,
		VirqSend:      450 * sim.Nanosecond,
		VirqDeliver:   350 * sim.Nanosecond,
		HypercallBase: 550 * sim.Nanosecond,
		CDNAPerDesc:   180 * sim.Nanosecond,
		CDNAPerPage:   120 * sim.Nanosecond,
		FlipCost:      600 * sim.Nanosecond,
		TickPeriod:    10 * sim.Millisecond,
		TickCost:      2 * sim.Microsecond,
		TickISR:       500 * sim.Nanosecond,
	}
}

// Hypervisor is the VMM.
type Hypervisor struct {
	Eng    *sim.Engine
	CPU    *cpu.CPU
	Mem    *mem.Memory
	Params Params

	// CDNA pieces (nil in pure software-virtualization setups).
	Prot   *core.Protection
	CtxMgr *core.ContextManager

	domains   []*Domain
	nextDomID mem.DomID

	// channels and decoders are append-only creation rosters; like the
	// bind registry, ordinal position is the checkpoint identity of a
	// channel or decoder, stable because construction is deterministic.
	channels []*EventChannel
	decoders []*BitVecDecoder

	pendFaults sim.FIFO[faultOp]
	faultFn    sim.Fn

	PhysIRQs stats.Counter // physical interrupts fielded
	Faults   stats.Counter // CDNA protection faults handled
}

// New creates a hypervisor over the machine's CPU and memory. Protection
// mode configures the CDNA engine; pure Xen setups simply never use it.
func New(eng *sim.Engine, c *cpu.CPU, m *mem.Memory, p Params, mode core.Mode) *Hypervisor {
	h := &Hypervisor{Eng: eng, CPU: c, Mem: m, Params: p, nextDomID: mem.Dom0}
	h.faultFn = eng.Bind(h.serviceFault)
	h.Prot = core.NewProtection(m, mode)
	h.CtxMgr = core.NewContextManager(h.Prot)
	return h
}

// Domain is a virtual machine under the hypervisor.
type Domain struct {
	ID   mem.DomID
	Name string
	VCPU *cpu.Domain
	hyp  *Hypervisor

	// Virqs counts virtual interrupts delivered to this domain (the
	// "Interrupts/s" columns of Tables 2–4).
	Virqs stats.Counter
}

// NewDomain creates a domain; the first one created is the driver domain
// (Dom0), subsequent ones are guests.
func (h *Hypervisor) NewDomain(name string, kind cpu.Kind) *Domain {
	d := &Domain{ID: h.nextDomID, Name: name, VCPU: h.CPU.NewDomain(name, kind), hyp: h}
	h.nextDomID++
	h.domains = append(h.domains, d)
	return d
}

// Domains returns all domains.
func (h *Hypervisor) Domains() []*Domain { return h.domains }

// Hypercall runs fn in the domain's context with the given cost charged
// to the hypervisor category (on top of the fixed hypercall base cost).
// The hc: flight-recorder prefix is only rendered when someone is
// recording, keeping the per-hypercall path allocation-free (the same
// convention internal/cpu uses for task names).
func (d *Domain) Hypercall(extra sim.Time, name string, fn sim.Fn) {
	if d.hyp.Eng.Traced() {
		name = "hc:" + name
	}
	d.VCPU.Exec(cpu.CatHyp, d.hyp.Params.HypercallBase+extra, name, fn)
}

// EventChannel is a Xen event channel bound to a handler in a target
// domain. Notifications while one is already pending are merged, exactly
// like the real pending-bit semantics — this is what keeps virtual
// interrupt rates bounded under load.
type EventChannel struct {
	Name    string
	target  *Domain
	handler func()
	pending bool

	// Delivery/send callbacks and the rendered virq event name, built
	// once at NewChannel so Notify allocates nothing per interrupt.
	deliverFn sim.Fn
	notifyFn  sim.Fn
	virqName  string

	Notifies stats.Counter // send attempts
	Merged   stats.Counter // sends coalesced onto a pending event
}

// NewChannel creates an event channel delivering to handler in target.
func (h *Hypervisor) NewChannel(target *Domain, name string, handler func()) *EventChannel {
	ch := &EventChannel{Name: name, target: target, handler: handler, virqName: "virq:" + name}
	ch.deliverFn = h.Eng.Bind(ch.deliver)
	ch.notifyFn = h.Eng.Bind(ch.Notify)
	h.channels = append(h.channels, ch)
	return ch
}

// Notify marks the channel pending and schedules the virtual interrupt.
// The sender has already been charged (hypercall or ISR context); the
// target pays the dispatch cost when it runs.
func (ch *EventChannel) Notify() {
	ch.Notifies.Inc()
	if ch.pending {
		ch.Merged.Inc()
		return
	}
	ch.pending = true
	d := ch.target
	d.Virqs.Inc()
	d.VCPU.ExecFront(cpu.CatKernel, d.hyp.Params.VirqDeliver, ch.virqName, ch.deliverFn)
}

func (ch *EventChannel) deliver() {
	ch.pending = false
	ch.handler()
}

// NotifyFromGuest is an event-channel send issued by a guest (a
// hypercall): the sender is charged VirqSend in hypervisor category,
// then the notification is delivered.
func (ch *EventChannel) NotifyFromGuest(sender *Domain) {
	sender.VCPU.Exec(cpu.CatHyp, sender.hyp.Params.VirqSend, "evtchn_send", ch.notifyFn)
}

// IRQLine is a physical interrupt routed through the hypervisor.
type IRQLine struct {
	Name    string
	hyp     *Hypervisor
	handler sim.Fn // runs in ISR (hypervisor) context
}

// NewIRQ allocates an interrupt line whose handler runs in the
// hypervisor's ISR context.
func (h *Hypervisor) NewIRQ(name string, handler func()) *IRQLine {
	return &IRQLine{Name: "irq:" + name, hyp: h, handler: h.Eng.Bind(handler)}
}

// Raise fields the physical interrupt: the hypervisor's ISR runs at the
// next task boundary and invokes the handler.
func (l *IRQLine) Raise() {
	l.hyp.PhysIRQs.Inc()
	l.hyp.CPU.ExecISR(l.hyp.Params.ISRCost, l.Name, l.handler)
}

// StartTimers begins periodic timer ticks: a hypervisor timer ISR plus a
// per-domain kernel tick, the background heartbeat every real system
// carries. The driver domain's residual 0.3–0.5% time in the paper's
// CDNA rows is exactly this kind of non-networking activity. The tick
// is one sim.Timer re-armed in place for the life of the run.
func (h *Hypervisor) StartTimers() {
	var tm *sim.Timer
	tm = h.Eng.NewTimer("timer.tick", func() {
		h.CPU.ExecISR(h.Params.TickISR, "timer", sim.Fn{})
		for _, d := range h.domains {
			d.VCPU.Exec(cpu.CatKernel, h.Params.TickCost, "tick", sim.Fn{})
		}
		tm.ArmAfter(h.Params.TickPeriod)
	})
	tm.ArmAfter(h.Params.TickPeriod)
}

// --- CDNA integration (§3.2–3.3) ---

// CDNAEnqueueCost is the charged cost of a cdna_enqueue hypercall for a
// descriptor batch (§3.3): it scales with the number of descriptors and
// the pages they span. The guest driver issues the hypercall itself —
// d.Hypercall(cost, "cdna_enqueue", fn) with its own bound callback —
// so the pending operation lives in the driver's snapshotable queue
// instead of a captured closure.
func (d *Domain) CDNAEnqueueCost(descs []ring.Desc) sim.Time {
	pages := 0
	for _, desc := range descs {
		_, n := mem.RangeSpan(desc.Addr, int(desc.Len))
		pages += n
	}
	return sim.Time(len(descs))*d.hyp.Params.CDNAPerDesc + sim.Time(pages)*d.hyp.Params.CDNAPerPage
}

// CDNAValidate runs the protection engine for a descriptor batch in the
// domain's name — the body of the cdna_enqueue hypercall.
func (d *Domain) CDNAValidate(r *ring.Ring, descs []ring.Desc) (int, error) {
	return d.hyp.Prot.Enqueue(d.ID, r, descs)
}

// BitVecDecoder is the hypervisor's CDNA interrupt service path (§3.2)
// for one NIC: drain the bit-vector queue, then notify the event channel
// of every context with a set bit. The per-context decode cost is
// charged as additional ISR work; the drained masks await that charged
// decode in a queue rather than a captured closure, so in-flight
// interrupts checkpoint cleanly.
//
// channels is indexed by context ID (nil entries are contexts without a
// registered channel). A dense slice instead of a map keeps delivery
// order structurally tied to ascending context ID — map iteration order
// can never leak into the simulation — and makes the per-interrupt
// decode loop allocation- and hash-free. The decoder keeps the slice
// the builder hands it, so channels registered after construction are
// seen as long as the backing array is shared.
type BitVecDecoder struct {
	hyp      *Hypervisor
	q        *core.BitVectorQueue
	channels []*EventChannel
	pend     sim.FIFO[uint32] // drained masks awaiting the charged decode
	decodeFn sim.Fn
}

// NewBitVecDecoder creates the ISR-side decoder for one NIC's
// bit-vector queue.
func (h *Hypervisor) NewBitVecDecoder(q *core.BitVectorQueue, channels []*EventChannel) *BitVecDecoder {
	d := &BitVecDecoder{hyp: h, q: q, channels: channels}
	d.decodeFn = h.Eng.Bind(d.decode)
	h.decoders = append(h.decoders, d)
	return d
}

// HandleIRQ drains the queue and schedules the charged decode. It is
// the physical-IRQ handler body for a CDNA NIC.
func (d *BitVecDecoder) HandleIRQ() {
	bits, _ := d.q.Drain()
	n := 0
	for ctx := 0; ctx < core.NumContexts; ctx++ {
		if bits&(1<<uint(ctx)) != 0 {
			n++
		}
	}
	if n == 0 {
		return
	}
	d.pend.Push(bits)
	d.hyp.CPU.ExecISR(d.hyp.Params.BitvecBase+sim.Time(n)*d.hyp.Params.BitvecPerCtx, "cdna.bitvec", d.decodeFn)
}

func (d *BitVecDecoder) decode() {
	bits := d.pend.Pop()
	for ctx := 0; ctx < core.NumContexts && ctx < len(d.channels); ctx++ {
		if bits&(1<<uint(ctx)) != 0 && d.channels[ctx] != nil {
			d.channels[ctx].Notify()
		}
	}
}

// HandleFault services a CDNA protection fault reported by the NIC: the
// offending context is revoked (§3.3). Each CDNA NIC has its own
// ContextManager (contexts are per-device); pass the manager for the
// faulting NIC — or nil to use the hypervisor's default manager. Faults
// awaiting service queue on the hypervisor (they only occur in attack
// scenarios; a checkpoint with one outstanding is refused).
func (h *Hypervisor) HandleFault(cm *core.ContextManager, f *core.Fault) {
	if cm == nil {
		cm = h.CtxMgr
	}
	h.Faults.Inc()
	h.pendFaults.Push(faultOp{cm: cm, f: f})
	h.CPU.ExecISR(h.Params.ISRCost, "cdna.fault", h.faultFn)
}

func (h *Hypervisor) serviceFault() {
	op := h.pendFaults.Pop()
	op.cm.HandleFault(op.f)
}

// PendingFaults reports faults fielded but not yet serviced.
func (h *Hypervisor) PendingFaults() int { return h.pendFaults.Len() }

// StartWindow resets hypervisor-level windowed counters.
func (h *Hypervisor) StartWindow() {
	h.PhysIRQs.StartWindow()
	h.Faults.StartWindow()
	for _, d := range h.domains {
		d.Virqs.StartWindow()
	}
}
