package xen

import (
	"fmt"

	"cdna/internal/stats"
)

// ChannelState is one event channel's checkpoint image. The scheduled
// virq-delivery task, when one is pending, lives in the target VCPU's
// queue (captured by the cpu layer); this is the channel's own bit.
type ChannelState struct {
	Pending  bool
	Notifies stats.CounterState
	Merged   stats.CounterState
}

// State is the hypervisor's checkpoint image: counters, per-domain virq
// counters, every event channel, and every bit-vector decoder's drained
// masks awaiting their charged decode. Channel and decoder identity is
// creation order. The CDNA protection engine and context managers are
// captured separately (the machine layer owns their walk).
type State struct {
	PhysIRQs stats.CounterState
	Faults   stats.CounterState
	Virqs    []stats.CounterState
	Channels []ChannelState
	Decoders [][]uint32
}

// State captures the hypervisor. A snapshot with a fielded-but-
// unserviced protection fault is refused: faults only occur in attack
// scenarios, and the pending operation holds a raw pointer pair with no
// portable identity.
func (h *Hypervisor) State() (State, error) {
	if h.pendFaults.Len() > 0 {
		return State{}, fmt.Errorf("xen: %d protection faults awaiting service; snapshot refused", h.pendFaults.Len())
	}
	s := State{
		PhysIRQs: h.PhysIRQs.State(),
		Faults:   h.Faults.State(),
		Virqs:    make([]stats.CounterState, len(h.domains)),
		Channels: make([]ChannelState, len(h.channels)),
		Decoders: make([][]uint32, len(h.decoders)),
	}
	for i, d := range h.domains {
		s.Virqs[i] = d.Virqs.State()
	}
	for i, ch := range h.channels {
		s.Channels[i] = ChannelState{Pending: ch.pending, Notifies: ch.Notifies.State(), Merged: ch.Merged.State()}
	}
	for i, dec := range h.decoders {
		masks := make([]uint32, dec.pend.Len())
		for j := 0; j < dec.pend.Len(); j++ {
			masks[j] = dec.pend.At(j)
		}
		s.Decoders[i] = masks
	}
	return s, nil
}

// SetState restores the hypervisor into a freshly built machine with
// matching domain, channel and decoder rosters.
func (h *Hypervisor) SetState(s State) error {
	if len(s.Virqs) != len(h.domains) || len(s.Channels) != len(h.channels) || len(s.Decoders) != len(h.decoders) {
		return fmt.Errorf("xen: roster mismatch: snapshot has %d domains/%d channels/%d decoders, machine has %d/%d/%d",
			len(s.Virqs), len(s.Channels), len(s.Decoders), len(h.domains), len(h.channels), len(h.decoders))
	}
	h.PhysIRQs.SetState(s.PhysIRQs)
	h.Faults.SetState(s.Faults)
	for i, d := range h.domains {
		d.Virqs.SetState(s.Virqs[i])
	}
	for i, ch := range h.channels {
		ch.pending = s.Channels[i].Pending
		ch.Notifies.SetState(s.Channels[i].Notifies)
		ch.Merged.SetState(s.Channels[i].Merged)
	}
	for i, dec := range h.decoders {
		dec.pend.Clear()
		for _, m := range s.Decoders[i] {
			dec.pend.Push(m)
		}
	}
	h.pendFaults.Clear()
	return nil
}
