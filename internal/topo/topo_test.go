package topo

import (
	"fmt"
	"testing"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

// rig is a switch with n stations, one per port, each reachable through
// real pipes; deliveries are recorded per port in arrival order.
type rig struct {
	eng   *sim.Engine
	sw    *Switch
	ups   []*ether.Pipe // station -> switch
	macs  []ether.MAC
	log   [][]*ether.Frame // per-port deliveries
	order []delivery       // global delivery order
}

type delivery struct {
	port int
	f    *ether.Frame
	at   sim.Time
}

func newRig(t testing.TB, n int, p Params) *rig {
	t.Helper()
	r := &rig{eng: sim.New()}
	r.sw = New(r.eng, p)
	for i := 0; i < n; i++ {
		i := i
		l := ether.NewDuplex(r.eng, p.LinkGbps, p.PropDelay)
		r.sw.AddPort(l.AtoB, l.BtoA)
		l.BtoA.Connect(ether.PortFunc(func(f *ether.Frame) {
			r.log[i] = append(r.log[i], f)
			r.order = append(r.order, delivery{i, f, r.eng.Now()})
		}))
		r.ups = append(r.ups, l.AtoB)
		r.macs = append(r.macs, ether.MakeMAC(5, i))
	}
	r.log = make([][]*ether.Frame, n)
	return r
}

// learnAll primes the forwarding database: every station broadcasts
// once, so all MACs are learned before the measured traffic. The
// switch's windowed counters restart so the priming traffic is not part
// of any conservation ledger.
func (r *rig) learnAll() {
	for i, up := range r.ups {
		up.Send(&ether.Frame{Src: r.macs[i], Dst: ether.Broadcast, Size: 60})
	}
	r.eng.Run(r.eng.Now() + sim.Second)
	for i := range r.log {
		r.log[i] = r.log[i][:0]
	}
	r.order = r.order[:0]
	r.sw.StartWindow()
}

func (r *rig) drain() { r.eng.Run(r.eng.Now() + 10*sim.Second) }

func fastParams() Params {
	// Degenerate fabric: effectively infinite line rate, zero latency,
	// unbounded queues — the switch collapses to pure bridge semantics.
	return Params{LinkGbps: 8e9, PropDelay: 0, ForwardLatency: 0, EgressCap: 1 << 30}
}

func TestSwitchLearnsAndUnicasts(t *testing.T) {
	r := newRig(t, 3, DefaultParams())
	r.learnAll()
	r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 1514})
	r.drain()
	if len(r.log[2]) != 1 || len(r.log[1]) != 0 {
		t.Fatalf("unicast deliveries: port1=%d port2=%d", len(r.log[1]), len(r.log[2]))
	}
	if r.sw.Lookup(r.macs[0]) != 0 {
		t.Fatal("source not learned")
	}
}

func TestSwitchStoreAndForwardLatency(t *testing.T) {
	p := DefaultParams()
	r := newRig(t, 2, p)
	r.learnAll()
	start := r.eng.Now()
	f := &ether.Frame{Src: r.macs[0], Dst: r.macs[1], Size: 1514}
	r.ups[0].Send(f)
	r.drain()
	if len(r.log[1]) != 1 {
		t.Fatalf("deliveries = %d", len(r.log[1]))
	}
	// Two full serializations (ingress link, egress link), two
	// propagations, plus the switch's forwarding latency.
	wire := sim.Time(float64(f.WireBytes()) / ether.GbpsToBytesPerNs(p.LinkGbps))
	want := start + 2*wire + 2*p.PropDelay + p.ForwardLatency
	if got := r.order[0].at; got != want {
		t.Fatalf("delivered at %v, want %v (store-and-forward of two hops)", got, want)
	}
}

func TestSwitchEgressTailDropAndConservation(t *testing.T) {
	p := DefaultParams()
	p.EgressCap = 4
	r := newRig(t, 3, p)
	r.learnAll()
	// Two senders converge on station 2 far above line rate: the egress
	// queue must cap at 4 and tail-drop the excess.
	const burst = 50
	for i := 0; i < burst; i++ {
		r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 1514})
		r.ups[1].Send(&ether.Frame{Src: r.macs[1], Dst: r.macs[2], Size: 1514})
	}
	r.drain()
	port := r.sw.Port(2)
	if port.Dropped.Window() == 0 {
		t.Fatal("incast burst above line rate must tail-drop")
	}
	if port.MaxDepth() > p.EgressCap {
		t.Fatalf("egress depth %d exceeded cap %d", port.MaxDepth(), p.EgressCap)
	}
	if port.Depth() != 0 {
		t.Fatalf("queue not drained: depth %d", port.Depth())
	}
	// Conservation: every forwarding decision either entered the queue
	// or was counted as a drop, and everything enqueued was delivered.
	if got := port.Enqueued.Window() + port.Dropped.Window(); got != 2*burst {
		t.Fatalf("enqueued+dropped = %d, want %d", got, 2*burst)
	}
	if uint64(len(r.log[2])) != port.Enqueued.Window() {
		t.Fatalf("delivered %d, enqueued %d", len(r.log[2]), port.Enqueued.Window())
	}
}

// The randomized differential test: the same frame schedule through the
// store-and-forward switch (with a degenerate zero-cost fabric) and
// through a flat ether.Bridge must produce identical global delivery
// order and byte-identical per-station counters — the switch is the
// bridge plus physics, nothing else. Mirrors the heap-vs-wheel
// scheduler differential in internal/sim/sched_test.go.
func TestSwitchVsBridgeDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const nPorts = 5
			const nFrames = 400

			type event struct {
				in   int
				f    *ether.Frame
				gap  sim.Time
				size int
			}
			// One schedule, generated once per seed.
			rng := sim.NewRNG(seed)
			macs := make([]ether.MAC, nPorts)
			for i := range macs {
				macs[i] = ether.MakeMAC(5, i)
			}
			var sched []event
			for i := 0; i < nFrames; i++ {
				in := rng.Intn(nPorts)
				dst := ether.Broadcast
				if rng.Intn(10) > 0 { // 10% broadcast
					dst = macs[rng.Intn(nPorts)]
				}
				size := 60 + rng.Intn(1455)
				// Distinct timestamps per input: same-instant contention on
				// one egress wire is the pipe's FIFO physics, which the
				// synchronous reference cannot express (the property test
				// covers contention).
				sched = append(sched, event{
					in:  in,
					f:   &ether.Frame{Src: macs[in], Dst: dst, Size: size, Payload: i},
					gap: 1 + sim.Time(rng.Intn(2000)),
				})
			}

			// Reference: flat bridge, synchronous delivery.
			bridge := ether.NewBridge()
			var refOrder []string
			refBytes := make([]uint64, nPorts)
			for i := 0; i < nPorts; i++ {
				i := i
				bridge.AddPort(ether.PortFunc(func(f *ether.Frame) {
					refOrder = append(refOrder, fmt.Sprintf("%d<-%d", i, f.Payload))
					refBytes[i] += uint64(f.Size)
				}))
			}
			for _, ev := range sched {
				bridge.Input(ev.in, ev.f)
			}

			// Subject: the switch on a zero-cost fabric, same schedule as
			// timed events.
			eng := sim.New()
			sw := New(eng, fastParams())
			var gotOrder []string
			gotBytes := make([]uint64, nPorts)
			for i := 0; i < nPorts; i++ {
				i := i
				out := ether.NewPipe(eng, fastParams().LinkGbps, 0)
				out.Connect(ether.PortFunc(func(f *ether.Frame) {
					gotOrder = append(gotOrder, fmt.Sprintf("%d<-%d", i, f.Payload))
					gotBytes[i] += uint64(f.Size)
				}))
				sw.AddPort(nil, out)
			}
			at := sim.Time(0)
			for _, ev := range sched {
				at += ev.gap
				ev := ev
				eng.At(at, "test.input", func() { sw.Input(ev.in, ev.f) })
			}
			eng.Run(at + sim.Second)

			if len(gotOrder) != len(refOrder) {
				t.Fatalf("delivery counts differ: switch %d, bridge %d", len(gotOrder), len(refOrder))
			}
			for i := range refOrder {
				if gotOrder[i] != refOrder[i] {
					t.Fatalf("delivery %d differs: switch %q, bridge %q", i, gotOrder[i], refOrder[i])
				}
			}
			for i := range refBytes {
				if gotBytes[i] != refBytes[i] {
					t.Fatalf("port %d byte counters differ: switch %d, bridge %d", i, gotBytes[i], refBytes[i])
				}
			}
			if sw.Forwarded().Total() != bridge.Forwarded.Total() || sw.Flooded().Total() != bridge.Flooded.Total() {
				t.Fatalf("fwd/flood counters differ: switch %d/%d, bridge %d/%d",
					sw.Forwarded().Total(), sw.Flooded().Total(), bridge.Forwarded.Total(), bridge.Flooded.Total())
			}
		})
	}
}

// Fabric invariants under random topologies and overload-induced drops:
// no frame duplicated to a port, no reordering within a (src,dst) pair,
// and conservation — every forwarding decision is either delivered or
// counted as dropped, nothing vanishes. Runs under -race in CI.
func TestSwitchFabricInvariantsProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed * 7919)
			n := 2 + rng.Intn(7) // 2..8 ports
			p := DefaultParams()
			p.EgressCap = 2 + rng.Intn(16) // small queues force drops
			r := newRig(t, n, p)
			// Random (but unique) station MACs.
			for i := range r.macs {
				r.macs[i] = ether.MakeMAC(1+rng.Intn(40), i)
			}
			r.learnAll()

			// Random traffic offered above line rate so egress queues
			// overflow; each frame carries (sender, sequence) identity.
			const frames = 2000
			type key struct{ src, dst int }
			sent := map[key][]int{}
			at := r.eng.Now()
			for i := 0; i < frames; i++ {
				src := rng.Intn(n)
				dst := rng.Intn(n)
				if dst == src {
					dst = (dst + 1) % n
				}
				k := key{src, dst}
				sent[k] = append(sent[k], i)
				f := &ether.Frame{Src: r.macs[src], Dst: r.macs[dst], Size: 200 + rng.Intn(1300), Payload: i}
				at += sim.Time(rng.Intn(6000)) // ~3us mean gap < 12us line slot: overload
				ii, ff := src, f
				r.eng.At(at, "test.offer", func() { r.ups[ii].Send(ff) })
			}
			r.eng.Run(at + sim.Second)
			r.drain()

			// Reconstruct per-(src,dst) delivery sequences.
			got := map[key][]int{}
			seenAtPort := map[[2]int]bool{}
			for port, list := range r.log {
				for _, f := range list {
					id := f.Payload.(int)
					if seenAtPort[[2]int{port, id}] {
						t.Fatalf("frame %d duplicated at port %d", id, port)
					}
					seenAtPort[[2]int{port, id}] = true
					src := r.sw.Lookup(f.Src)
					got[key{src, port}] = append(got[key{src, port}], id)
				}
			}
			// No reordering: each delivered sequence is a subsequence of
			// the sent sequence (tail drops may punch holes, never swap).
			for k, ids := range got {
				pos := -1
				sentIDs := sent[k]
				idx := map[int]int{}
				for i, id := range sentIDs {
					idx[id] = i
				}
				for _, id := range ids {
					p, ok := idx[id]
					if !ok {
						t.Fatalf("port %d delivered frame %d never sent on pair %v", k.dst, id, k)
					}
					if p <= pos {
						t.Fatalf("pair %v reordered: frame %d arrived after a later frame", k, id)
					}
					pos = p
				}
			}
			// Conservation, per port and globally, after full drain.
			var enq, drop, delivered uint64
			for i := 0; i < r.sw.NumPorts(); i++ {
				port := r.sw.Port(i)
				if port.Depth() != 0 {
					t.Fatalf("port %d not drained: depth %d", i, port.Depth())
				}
				if uint64(len(r.log[i])) != port.Enqueued.Window() {
					t.Fatalf("port %d delivered %d != enqueued %d", i, len(r.log[i]), port.Enqueued.Window())
				}
				enq += port.Enqueued.Window()
				drop += port.Dropped.Window()
				delivered += uint64(len(r.log[i]))
			}
			// Unicast to learned MACs: one forwarding decision per input.
			if enq+drop != r.sw.Inputs.Window() {
				t.Fatalf("conservation: enqueued %d + dropped %d != inputs %d", enq, drop, r.sw.Inputs.Window())
			}
			if drop != r.sw.Drops.Window() {
				t.Fatalf("drop ledgers disagree: ports %d, switch %d", drop, r.sw.Drops.Window())
			}
			if delivered+drop != uint64(frames) {
				t.Fatalf("sent %d != delivered %d + dropped %d", frames, delivered, drop)
			}
		})
	}
}

// Invalid fabric constants must be rejected at construction with a
// clear error, not turned into silently nonsense schedules. EgressCap
// <= 0 stays a legal "use the default" request.
func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{LinkGbps: 0, PropDelay: 0, ForwardLatency: 0},
		{LinkGbps: -1},
		{LinkGbps: 1, PropDelay: -sim.Nanosecond},
		{LinkGbps: 1, ForwardLatency: -sim.Microsecond},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("Params %+v validated, want error", p)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New accepted invalid Params %+v", p)
				}
			}()
			New(sim.New(), p)
		}()
	}
	ok := DefaultParams()
	ok.EgressCap = 0 // "unset" defaults, never errors
	if err := ok.Validate(); err != nil {
		t.Fatalf("default Params rejected: %v", err)
	}
	if sw := New(sim.New(), ok); sw.Params().EgressCap != DefaultParams().EgressCap {
		t.Fatalf("EgressCap not defaulted: %d", sw.Params().EgressCap)
	}
}

// Failed ports must be dead in both directions. FailPort kills egress;
// this pins the ingress half: a host behind a failed port that keeps
// transmitting must see every frame dropped at the port — zero
// forwards, zero floods, zero station moves — until RestorePort.
// (Regression: ingress frames on a failed port used to be accepted and
// forwarded, silently re-learning the "dead" station's MAC.)
func TestSwitchFailedPortDropsIngress(t *testing.T) {
	r := newRig(t, 3, DefaultParams())
	r.learnAll()
	r.sw.FailPort(0)
	if r.sw.Lookup(r.macs[0]) != -1 {
		t.Fatal("FailPort must unlearn the station behind the port")
	}

	// The host behind the dead port keeps transmitting.
	const frames = 20
	for i := 0; i < frames; i++ {
		r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 300})
	}
	r.drain()
	if got := len(r.log[2]); got != 0 {
		t.Fatalf("failed port leaked %d ingress frames to port 2, want 0", got)
	}
	if fwd, fld := r.sw.Forwarded().Window(), r.sw.Flooded().Window(); fwd != 0 || fld != 0 {
		t.Fatalf("failed-port ingress reached the bridge: forwarded %d, flooded %d, want 0/0", fwd, fld)
	}
	if moves := r.sw.Moves().Window(); moves != 0 {
		t.Fatalf("failed-port ingress re-learned its MAC: moves %d, want 0", moves)
	}
	if r.sw.Lookup(r.macs[0]) != -1 {
		t.Fatal("failed-port ingress must not refresh the forwarding database")
	}
	// The drops are accounted on the failed port and the switch total.
	port := r.sw.Port(0)
	if port.Dropped.Window() != frames || r.sw.Drops.Window() != frames {
		t.Fatalf("ingress drops: port %d, switch %d, want %d both",
			port.Dropped.Window(), r.sw.Drops.Window(), frames)
	}

	// RestorePort brings the station back: traffic flows and the MAC is
	// re-learned from its next frame.
	r.sw.RestorePort(0)
	r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 300})
	r.drain()
	if got := len(r.log[2]); got != 1 {
		t.Fatalf("restored port delivered %d frames, want 1", got)
	}
	if r.sw.Lookup(r.macs[0]) != 0 {
		t.Fatal("restored station not re-learned")
	}
}

// The switch relearns a moved station exactly as the flat bridge does
// (the regression the ether tests pin, holding through the
// store-and-forward layer).
func TestSwitchRelearnAfterMove(t *testing.T) {
	r := newRig(t, 3, DefaultParams())
	r.learnAll()
	mac := r.macs[0]
	// Station 0 "migrates" to port 1 and transmits from there.
	r.ups[1].Send(&ether.Frame{Src: mac, Dst: r.macs[2], Size: 300})
	r.drain()
	if r.sw.Lookup(mac) != 1 {
		t.Fatalf("moved station learned on %d, want 1", r.sw.Lookup(mac))
	}
	// Traffic toward it now exits port 1.
	before := len(r.log[1])
	r.ups[2].Send(&ether.Frame{Src: r.macs[2], Dst: mac, Size: 300})
	r.drain()
	if len(r.log[1]) != before+1 {
		t.Fatalf("delivery after move: port1 got %d, want %d", len(r.log[1]), before+1)
	}
}

// The forwarding hot path must not allocate in steady state: pooled
// events, a reused pending FIFO, and per-port FIFOs at working depth.
// (No recording rig here — recorder appends would be the only
// allocations.)
func TestSwitchHotPathZeroAlloc(t *testing.T) {
	eng := sim.New()
	p := DefaultParams()
	sw := New(eng, p)
	const n = 4
	ups := make([]*ether.Pipe, n)
	macs := make([]ether.MAC, n)
	for i := 0; i < n; i++ {
		l := ether.NewDuplex(eng, p.LinkGbps, p.PropDelay)
		sw.AddPort(l.AtoB, l.BtoA)
		l.BtoA.Connect(ether.PortFunc(func(f *ether.Frame) {}))
		ups[i] = l.AtoB
		macs[i] = ether.MakeMAC(5, i)
	}
	for i, up := range ups {
		up.Send(&ether.Frame{Src: macs[i], Dst: ether.Broadcast, Size: 60})
	}
	drain := func() { eng.Run(eng.Now() + 10*sim.Second) }
	drain()
	f := &ether.Frame{Src: macs[0], Dst: macs[2], Size: 1514}
	// Prime FIFOs and the event pool to working depth.
	for i := 0; i < 64; i++ {
		ups[0].Send(f)
	}
	drain()
	allocs := testing.AllocsPerRun(200, func() {
		ups[0].Send(f)
		drain()
	})
	if allocs != 0 {
		t.Fatalf("switch hot path allocates %.1f per frame, want 0", allocs)
	}
}
