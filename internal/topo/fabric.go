package topo

import (
	"fmt"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

// FabricKind selects the fabric topology preset.
type FabricKind int

const (
	// KindToR is the classic single top-of-rack switch every host
	// plugs into — the evaluation fabric of PRs 6–9 and the default.
	KindToR FabricKind = iota
	// KindLeafSpine is a two-tier Clos: hosts attach to leaf switches,
	// every leaf trunks to every spine, and cross-leaf flows are ECMP
	// hashed over the spines.
	KindLeafSpine
	// KindFatTree is a three-tier fat-tree: edge switches in pods of
	// two, Spines aggregation switches per pod, and one core per
	// aggregation stripe (core j connects aggregation j of every pod).
	KindFatTree
)

func (k FabricKind) String() string {
	switch k {
	case KindToR:
		return "tor"
	case KindLeafSpine:
		return "leafspine"
	case KindFatTree:
		return "fattree"
	default:
		return fmt.Sprintf("FabricKind(%d)", int(k))
	}
}

// ParseFabricKind parses a FabricKind name as written by String.
func ParseFabricKind(s string) (FabricKind, error) {
	switch s {
	case "tor", "":
		return KindToR, nil
	case "leafspine":
		return KindLeafSpine, nil
	case "fattree":
		return KindFatTree, nil
	default:
		return 0, fmt.Errorf("topo: unknown fabric kind %q (tor, leafspine, fattree)", s)
	}
}

// MarshalText encodes the kind by name (campaign specs, JSON results).
func (k FabricKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText decodes a kind name.
func (k *FabricKind) UnmarshalText(b []byte) error {
	v, err := ParseFabricKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// FabricSpec configures a fabric shape. The zero value is the classic
// single ToR. All fields are scalars so the spec can sit inside a
// comparable benchmark Config (campaign grids key on it).
type FabricSpec struct {
	// Kind selects the topology preset.
	Kind FabricKind `json:"kind"`
	// HostsPerLeaf is how many hosts share one leaf/edge switch
	// (multiplied by the NIC count for the port roster). 0 defaults
	// to 2. Ignored by KindToR.
	HostsPerLeaf int `json:"hosts_per_leaf,omitempty"`
	// Spines is the spine count (leaf-spine) or the per-pod
	// aggregation count, which also fixes the core count (fat-tree).
	// 0 defaults to 2. Ignored by KindToR.
	Spines int `json:"spines,omitempty"`
	// Oversub is the per-tier oversubscription ratio: each switch's
	// total uplink bandwidth is its downlink bandwidth divided by
	// Oversub. 0 defaults to 1 (non-blocking); >1 starves the trunks
	// the way real aggregation tiers do. Ignored by KindToR.
	Oversub float64 `json:"oversub,omitempty"`
	// Seed salts the per-switch ECMP hash so distinct experiments
	// spread flow pairs differently; results are byte-identical for a
	// given seed at any shard count.
	Seed uint64 `json:"seed,omitempty"`
}

// withDefaults fills the zero fields of a validated spec.
func (fs FabricSpec) withDefaults() FabricSpec {
	if fs.HostsPerLeaf == 0 {
		fs.HostsPerLeaf = 2
	}
	if fs.Spines == 0 {
		fs.Spines = 2
	}
	if fs.Oversub == 0 {
		fs.Oversub = 1
	}
	return fs
}

// Validate rejects specs that cannot build a sane fabric. Zero values
// mean "use the default" and always pass.
func (fs FabricSpec) Validate() error {
	if fs.Kind < KindToR || fs.Kind > KindFatTree {
		return fmt.Errorf("topo: unknown fabric kind %d", int(fs.Kind))
	}
	if fs.HostsPerLeaf < 0 {
		return fmt.Errorf("topo: HostsPerLeaf must be non-negative, got %d", fs.HostsPerLeaf)
	}
	if fs.Spines < 0 {
		return fmt.Errorf("topo: Spines must be non-negative, got %d", fs.Spines)
	}
	if fs.Oversub < 0 {
		return fmt.Errorf("topo: Oversub must be non-negative, got %g", fs.Oversub)
	}
	return nil
}

// Suffix returns the config-name fragment for a non-default spec
// ("" for the classic ToR, so existing experiment names are unchanged).
func (fs FabricSpec) Suffix() string {
	if fs.Kind == KindToR {
		return ""
	}
	fs = fs.withDefaults()
	s := fmt.Sprintf("-%s-l%d-s%d", fs.Kind, fs.HostsPerLeaf, fs.Spines)
	if fs.Oversub != 1 {
		s += fmt.Sprintf("-o%g", fs.Oversub)
	}
	return s
}

// fabricPort maps a global host-facing port index onto a member switch.
type fabricPort struct {
	sw   *Switch
	port int
}

// Fabric is a composed multi-switch topology behind one host-facing
// port roster: hosts attach through AddPort exactly as they do to a
// single Switch, and the builder wires the tiers, trunks and ECMP
// behind them. A KindToR fabric is one Switch with zero added
// mechanism, so the classic rack results are unchanged byte for byte.
//
// All member switches live on one engine (the bench layer places that
// engine on the last shard); only the host access links are ever
// cross-shard seams. Trunk pipes use keyed delivery sequencing like
// every other fabric pipe, so same-instant trunk arrivals order by
// (pipe, sequence) — a pure function of traffic — at any shard count.
type Fabric struct {
	eng  *sim.Engine
	p    Params
	spec FabricSpec

	switches  []*Switch // leaves/edges first, then aggs, then cores
	leaves    []*Switch
	hostPorts []fabricPort
	trunks    []*ether.Pipe // every trunk simplex pipe, for accounting

	hosts, nics int
	nextKey     int
}

// NewFabric builds the configured topology: the member switches and
// their trunk links. Host links attach afterwards through AddPort, in
// global port order (host-major, then NIC). hosts and nics size the
// leaf tier; keyBase is the first free keyed-pipe ID (the bench layer
// owns IDs below it for access links). Params and spec must validate.
func NewFabric(eng *sim.Engine, p Params, spec FabricSpec, hosts, nics, keyBase int) (*Fabric, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if hosts < 1 || nics < 1 {
		return nil, fmt.Errorf("topo: fabric needs hosts >= 1 and nics >= 1, got %d/%d", hosts, nics)
	}
	spec = spec.withDefaults()
	fb := &Fabric{eng: eng, p: p, spec: spec, hosts: hosts, nics: nics, nextKey: keyBase}
	switch spec.Kind {
	case KindToR:
		sw := New(eng, p)
		fb.adopt(sw)
		fb.leaves = []*Switch{sw}
	case KindLeafSpine:
		fb.buildLeafSpine()
	case KindFatTree:
		fb.buildFatTree()
	}
	return fb, nil
}

// adopt registers a member switch and derives its ECMP seed from the
// fabric seed and the switch's build index.
func (fb *Fabric) adopt(sw *Switch) {
	sw.SetECMPSeed(ecmpHash(fb.spec.Seed, ether.MakeMAC(0, len(fb.switches)), ether.MAC{}))
	fb.switches = append(fb.switches, sw)
}

// trunk wires one full-duplex keyed trunk: lower sends up on AtoB and
// receives BtoA; upper is the mirror. The lower side's port is an
// uplink (valley-free ECMP member); the upper side's is a plain
// down-facing port.
func (fb *Fabric) trunk(lower, upper *Switch, gbps float64) {
	l := ether.NewDuplexOn(fb.eng, fb.eng, gbps, fb.p.PropDelay)
	l.AtoB.EnableKeyed(fb.nextKey)
	l.BtoA.EnableKeyed(fb.nextKey + 1)
	fb.nextKey += 2
	lower.AddUplink(l.BtoA, l.AtoB)
	upper.AddPort(l.AtoB, l.BtoA)
	fb.trunks = append(fb.trunks, l.AtoB, l.BtoA)
}

// leafCount returns how many leaf/edge switches the spec needs.
func (fb *Fabric) leafCount() int {
	n := (fb.hosts + fb.spec.HostsPerLeaf - 1) / fb.spec.HostsPerLeaf
	if n < 1 {
		n = 1
	}
	return n
}

// uplinkGbps is the per-trunk rate of a switch with downGbps of total
// downlink bandwidth and n uplinks under the configured
// oversubscription ratio.
func (fb *Fabric) uplinkGbps(downGbps float64, n int) float64 {
	return downGbps / (fb.spec.Oversub * float64(n))
}

// buildLeafSpine creates the two-tier Clos: every leaf trunks to every
// spine. Switch order (leaves, then spines) and trunk order (leaf-major)
// fix the keyed-pipe IDs and ECMP seeds.
func (fb *Fabric) buildLeafSpine() {
	nl := fb.leafCount()
	for i := 0; i < nl; i++ {
		sw := New(fb.eng, fb.p)
		fb.adopt(sw)
		fb.leaves = append(fb.leaves, sw)
	}
	spines := make([]*Switch, fb.spec.Spines)
	for i := range spines {
		spines[i] = New(fb.eng, fb.p)
		fb.adopt(spines[i])
	}
	down := float64(fb.spec.HostsPerLeaf*fb.nics) * fb.p.LinkGbps
	up := fb.uplinkGbps(down, fb.spec.Spines)
	for _, leaf := range fb.leaves {
		for _, spine := range spines {
			fb.trunk(leaf, spine, up)
		}
	}
}

// buildFatTree creates the three-tier fat-tree: edges in pods of two,
// Spines aggregation switches per pod, and one core per aggregation
// stripe — core j connects aggregation j of every pod, so each pod has
// exactly one path to each core and floods cannot re-enter their
// source pod.
func (fb *Fabric) buildFatTree() {
	const podEdges = 2
	ne := fb.leafCount()
	pods := (ne + podEdges - 1) / podEdges
	for i := 0; i < ne; i++ {
		sw := New(fb.eng, fb.p)
		fb.adopt(sw)
		fb.leaves = append(fb.leaves, sw)
	}
	aggs := make([][]*Switch, pods) // aggs[pod][j]
	for p := 0; p < pods; p++ {
		aggs[p] = make([]*Switch, fb.spec.Spines)
		for j := range aggs[p] {
			aggs[p][j] = New(fb.eng, fb.p)
			fb.adopt(aggs[p][j])
		}
	}
	cores := make([]*Switch, fb.spec.Spines)
	for j := range cores {
		cores[j] = New(fb.eng, fb.p)
		fb.adopt(cores[j])
	}
	edgeDown := float64(fb.spec.HostsPerLeaf*fb.nics) * fb.p.LinkGbps
	edgeUp := fb.uplinkGbps(edgeDown, fb.spec.Spines)
	for e, edge := range fb.leaves {
		for _, agg := range aggs[e/podEdges] {
			fb.trunk(edge, agg, edgeUp)
		}
	}
	aggUp := fb.uplinkGbps(float64(podEdges)*edgeUp, 1)
	for p := 0; p < pods; p++ {
		for j, agg := range aggs[p] {
			fb.trunk(agg, cores[j], aggUp)
		}
	}
}

// Params returns the fabric constants.
func (fb *Fabric) Params() Params { return fb.p }

// Spec returns the (defaulted) fabric spec.
func (fb *Fabric) Spec() FabricSpec { return fb.spec }

// AddPort attaches the next host access link, in global port order
// (host-major, then NIC): port h*nics+i lands on the leaf serving host
// h. Wiring matches Switch.AddPort; the returned index is global.
func (fb *Fabric) AddPort(in, out *ether.Pipe) int {
	g := len(fb.hostPorts)
	leaf := fb.leaves[0]
	if fb.spec.Kind != KindToR {
		li := (g / fb.nics) / fb.spec.HostsPerLeaf
		if li >= len(fb.leaves) {
			li = len(fb.leaves) - 1
		}
		leaf = fb.leaves[li]
	}
	id := leaf.AddPort(in, out)
	fb.hostPorts = append(fb.hostPorts, fabricPort{sw: leaf, port: id})
	return g
}

// NumPorts returns the number of host-facing ports.
func (fb *Fabric) NumPorts() int { return len(fb.hostPorts) }

// Port returns host-facing port i (global index).
func (fb *Fabric) Port(i int) *Port {
	hp := fb.hostPorts[i]
	return hp.sw.Port(hp.port)
}

// FailPort kills host-facing port i in both directions on its leaf.
func (fb *Fabric) FailPort(i int) {
	hp := fb.hostPorts[i]
	hp.sw.FailPort(hp.port)
}

// RestorePort revives host-facing port i.
func (fb *Fabric) RestorePort(i int) {
	hp := fb.hostPorts[i]
	hp.sw.RestorePort(hp.port)
}

// NumSwitches returns the member-switch count (1 for KindToR).
func (fb *Fabric) NumSwitches() int { return len(fb.switches) }

// SwitchAt returns member switch i in build order (leaves/edges first,
// then aggregations, then cores).
func (fb *Fabric) SwitchAt(i int) *Switch { return fb.switches[i] }

// NumTrunks returns the number of trunk simplex pipes.
func (fb *Fabric) NumTrunks() int { return len(fb.trunks) }

// NextKey returns the first keyed-pipe ID above the fabric's own.
func (fb *Fabric) NextKey() int { return fb.nextKey }

// Lookup returns (switch index, port) where the fabric's leaf tier has
// learned a MAC, or (-1, -1). Spine/core entries are ignored — the
// leaves are where stations live.
func (fb *Fabric) Lookup(m ether.MAC) (int, int) {
	for i, sw := range fb.leaves {
		if p := sw.Lookup(m); p >= 0 {
			return i, p
		}
	}
	return -1, -1
}

// StartWindow restarts every member switch's windowed counters.
func (fb *Fabric) StartWindow() {
	for _, sw := range fb.switches {
		sw.StartWindow()
	}
}

// DropsWindow sums the windowed drop count over all member switches
// (egress tail drops, dead-port drops — at host ports and trunks).
func (fb *Fabric) DropsWindow() uint64 {
	var n uint64
	for _, sw := range fb.switches {
		n += sw.Drops.Window()
	}
	return n
}

// InputsWindow sums the windowed accepted-ingress count.
func (fb *Fabric) InputsWindow() uint64 {
	var n uint64
	for _, sw := range fb.switches {
		n += sw.Inputs.Window()
	}
	return n
}

// ForwardedWindow sums the windowed known-unicast forward count.
func (fb *Fabric) ForwardedWindow() uint64 {
	var n uint64
	for _, sw := range fb.switches {
		n += sw.Forwarded().Window()
	}
	return n
}

// FloodedWindow sums the windowed flood count.
func (fb *Fabric) FloodedWindow() uint64 {
	var n uint64
	for _, sw := range fb.switches {
		n += sw.Flooded().Window()
	}
	return n
}

// FloodCopiesWindow sums the windowed flood-recipient count; minus
// FloodedWindow it is the number of extra frame copies flooding
// created, the term that closes the fabric-wide conservation ledger.
func (fb *Fabric) FloodCopiesWindow() uint64 {
	var n uint64
	for _, sw := range fb.switches {
		n += sw.bridge.FloodCopies.Window()
	}
	return n
}

// MovesWindow sums the windowed station-move count (down-facing
// re-learns only; uplink flaps are not moves).
func (fb *Fabric) MovesWindow() uint64 {
	var n uint64
	for _, sw := range fb.switches {
		n += sw.Moves().Window()
	}
	return n
}

// StraysWindow sums the windowed stray count (frames released by the
// valley-free rule).
func (fb *Fabric) StraysWindow() uint64 {
	var n uint64
	for _, sw := range fb.switches {
		n += sw.Strays.Window()
	}
	return n
}

// MaxDepth returns the deepest egress high-water mark over every port
// of every member switch (host ports and trunks alike) since the last
// StartWindow.
func (fb *Fabric) MaxDepth() int {
	max := 0
	for _, sw := range fb.switches {
		for i := 0; i < sw.NumPorts(); i++ {
			if d := sw.Port(i).MaxDepth(); d > max {
				max = d
			}
		}
	}
	return max
}
