package topo

import (
	"encoding/json"
	"testing"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

// FabricKind must survive a JSON round-trip (campaign specs and result
// files key on the textual form) and reject names it never wrote.
func TestFabricKindTextRoundTrip(t *testing.T) {
	for _, k := range []FabricKind{KindToR, KindLeafSpine, KindFatTree} {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var got FabricKind
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("kind %v round-tripped to %v", k, got)
		}
	}
	var k FabricKind
	if err := k.UnmarshalText([]byte("mesh")); err == nil {
		t.Fatal("unknown kind name accepted")
	}
	if s := FabricKind(9).String(); s != "FabricKind(9)" {
		t.Fatalf("out-of-range kind prints %q", s)
	}
}

// The fabric's introspection surface: the parts the bench layer and the
// fault injector navigate by (port roster, keyed-ID watermark, member
// uplink counts, leaf-tier MAC lookup, move/depth gauges).
func TestFabricAccessors(t *testing.T) {
	spec := FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 2}
	p := DefaultParams()
	r := newFabRig(t, 4, 1, p, spec)
	fb := r.fb

	if got := fb.Params(); got != p {
		t.Fatalf("Params() = %+v, want %+v", got, p)
	}
	if fb.NumPorts() != 4 {
		t.Fatalf("NumPorts() = %d, want 4", fb.NumPorts())
	}
	// 2 leaves x 2 spines = 4 duplex trunks = 8 keyed simplex pipes,
	// claimed right above the 8 access-link IDs the rig handed out.
	if fb.NumTrunks() != 8 {
		t.Fatalf("NumTrunks() = %d, want 8", fb.NumTrunks())
	}
	if got := fb.NextKey(); got != 8+8 {
		t.Fatalf("NextKey() = %d, want 16", got)
	}
	if up := fb.SwitchAt(0).NumUplinks(); up != 2 {
		t.Fatalf("leaf has %d uplinks, want 2", up)
	}
	if up := fb.SwitchAt(2).NumUplinks(); up != 0 {
		t.Fatalf("spine has %d uplinks, want 0", up)
	}
	if si, pi := fb.Lookup(ether.MakeMAC(9, 99)); si != -1 || pi != -1 {
		t.Fatalf("unknown MAC looked up to (%d,%d)", si, pi)
	}

	r.learnAll()
	// Every leaf has learned host 3's MAC somewhere (leaf 1 on the
	// access port, leaf 0 on an uplink); Lookup reports the first.
	if si, pi := fb.Lookup(r.macs[3]); si < 0 || pi < 0 {
		t.Fatalf("learned MAC looked up to (%d,%d)", si, pi)
	}
	for i := 0; i < fb.NumPorts(); i++ {
		if fb.Port(i) == nil {
			t.Fatalf("Port(%d) = nil", i)
		}
	}

	// A station dragged to the other port of the same leaf is a move;
	// the windowed gauge must see it through the fabric roll-up.
	r.ups[1].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 300})
	r.drain()
	if fb.MovesWindow() == 0 {
		t.Fatal("cross-port re-learn not counted as a station move")
	}
	if fb.MaxDepth() < 1 {
		t.Fatalf("MaxDepth() = %d after traffic, want >= 1", fb.MaxDepth())
	}
}

// A flood arriving at a spine whose only port is the ingress trunk has
// no recipients: the copy must be released, not leaked or re-ascended.
// (1 leaf, 1 spine: the broadcast still reaches the other host once.)
func TestFabricFloodNoRecipients(t *testing.T) {
	spec := FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 1}
	r := newFabRig(t, 2, 1, DefaultParams(), spec)
	r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: ether.Broadcast, Size: 60})
	r.drain()
	if got := len(r.log[1]); got != 1 {
		t.Fatalf("host 1 received %d broadcast copies, want 1", got)
	}
	if got := len(r.log[0]); got != 0 {
		t.Fatalf("broadcast echoed %d copies to its sender", got)
	}
}

// A frame addressed to a MAC learned on its own ingress port is a
// hairpin: a multi-tier leaf must suppress it silently (no delivery, no
// drop, no stray) exactly like the single-tier bridge does.
func TestFabricHairpinSuppressed(t *testing.T) {
	spec := FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 2}
	r := newFabRig(t, 4, 1, DefaultParams(), spec)
	r.learnAll()
	r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[0], Size: 300})
	r.drain()
	for i, l := range r.log {
		if len(l) != 0 {
			t.Fatalf("hairpin frame delivered %d copies to host %d", len(l), i)
		}
	}
	if d := r.fb.DropsWindow(); d != 0 {
		t.Fatalf("hairpin counted as %d drops", d)
	}
	if s := r.fb.StraysWindow(); s != 0 {
		t.Fatalf("hairpin counted as %d strays", s)
	}
}

// With every uplink of a leaf failed, ECMP falls back to the full trunk
// set so the egress drop is accounted on a real port — cross-leaf
// traffic dies loudly instead of crashing the hash on an empty set.
func TestFabricECMPAllUplinksDown(t *testing.T) {
	spec := FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 2}
	r := newFabRig(t, 4, 1, DefaultParams(), spec)
	r.learnAll()
	// Trunks are wired before host access links, so leaf 0's uplink
	// ports are its first Spines port slots.
	leaf := r.fb.SwitchAt(0)
	leaf.FailPort(0)
	leaf.FailPort(1)
	for i := 0; i < 5; i++ {
		r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 300, Payload: i})
	}
	r.drain()
	if got := len(r.log[2]); got != 0 {
		t.Fatalf("cross-leaf traffic delivered %d frames over dead uplinks", got)
	}
	if r.fb.DropsWindow() == 0 {
		t.Fatal("dead-uplink traffic not accounted as drops")
	}
}

// intCodec round-trips the test payloads (small ints) for snapshot
// error-path tests.
type intCodec struct{}

func (intCodec) EncodePayload(p any) ([]byte, error) { return []byte{byte(p.(int))}, nil }
func (intCodec) DecodePayload(b []byte) (any, error) { return int(b[0]), nil }

// Snapshot error paths: payload frames without a codec refuse to
// capture; tampered images (short trunk roster, short port roster,
// payload bytes restored without a codec) refuse to restore.
func TestFabricSnapshotErrorPaths(t *testing.T) {
	spec := FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 2}
	build := func() *fabRig { return newFabRig(t, 4, 1, DefaultParams(), spec) }
	r := build()
	r.learnAll()
	for i := 0; i < 50; i++ {
		r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 1514, Payload: i})
	}
	r.eng.Run(r.eng.Now() + 40*sim.Microsecond) // leave payload frames in flight

	if _, err := r.fb.State(nil); err == nil {
		t.Fatal("captured in-flight payload frames without a codec")
	}
	st, err := r.fb.State(intCodec{})
	if err != nil {
		t.Fatal(err)
	}

	short := st
	short.Trunks = st.Trunks[:len(st.Trunks)-1]
	if err := build().fb.SetState(short, intCodec{}); err == nil {
		t.Fatal("short trunk roster accepted")
	}

	lame := st
	lame.Switches = append([]SwitchState(nil), st.Switches...)
	lame.Switches[0].Ports = lame.Switches[0].Ports[:1]
	if err := build().fb.SetState(lame, intCodec{}); err == nil {
		t.Fatal("short port roster accepted")
	}

	if err := build().fb.SetState(st, nil); err == nil {
		t.Fatal("restored payload bytes without a codec")
	}
}
