//go:build !race

package topo_test

import (
	"testing"

	"cdna/internal/ether"
	"cdna/internal/sim"
	"cdna/internal/topo"
)

// One store-and-forward traversal must be allocation-free in steady
// state: pending frames ride a reused FIFO, callbacks are bound at
// construction, and the event core pools its events. Race builds are
// excluded (the detector's instrumentation allocates).
func TestSwitchForwardZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	eng := sim.New()
	p := topo.DefaultParams()
	sw := topo.New(eng, p)
	const n = 4
	macs := make([]ether.MAC, n)
	for i := 0; i < n; i++ {
		l := ether.NewDuplex(eng, p.LinkGbps, p.PropDelay)
		sw.AddPort(l.AtoB, l.BtoA)
		l.BtoA.Connect(ether.PortFunc(func(f *ether.Frame) { f.Release() }))
		macs[i] = ether.MakeMAC(5, i)
	}
	for i := 0; i < n; i++ {
		sw.Input(i, &ether.Frame{Src: macs[i], Dst: ether.Broadcast, Size: 60})
	}
	drain := func() { eng.Run(eng.Now() + sim.Second) }
	drain()
	f := &ether.Frame{Src: macs[0], Dst: macs[2], Size: 1514}
	for i := 0; i < 32; i++ {
		sw.Input(0, f)
	}
	drain()

	if a := testing.AllocsPerRun(200, func() {
		sw.Input(0, f)
		drain()
	}); a != 0 {
		t.Fatalf("steady-state forward allocates %.1f/op, want 0", a)
	}
}
