package topo

import (
	"fmt"
	"testing"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

// fabRig is a fabric with hosts*nics endpoints attached through real
// keyed access links (mirroring the bench cluster wiring: access pipes
// keyed 0.., trunks keyed above them); deliveries are recorded per
// global port in arrival order.
type fabRig struct {
	eng   *sim.Engine
	fb    *Fabric
	ups   []*ether.Pipe
	macs  []ether.MAC
	log   [][]*ether.Frame
	order []delivery
}

func newFabRig(t testing.TB, hosts, nics int, p Params, spec FabricSpec) *fabRig {
	t.Helper()
	eng := sim.New()
	total := hosts * nics
	fb, err := NewFabric(eng, p, spec, hosts, nics, 2*total)
	if err != nil {
		t.Fatal(err)
	}
	r := &fabRig{eng: eng, fb: fb, log: make([][]*ether.Frame, total)}
	for i := 0; i < total; i++ {
		i := i
		l := ether.NewDuplexOn(eng, eng, p.LinkGbps, p.PropDelay)
		l.AtoB.EnableKeyed(2 * i)
		l.BtoA.EnableKeyed(2*i + 1)
		fb.AddPort(l.AtoB, l.BtoA)
		l.BtoA.Connect(ether.PortFunc(func(f *ether.Frame) {
			r.log[i] = append(r.log[i], f)
			r.order = append(r.order, delivery{i, f, eng.Now()})
		}))
		r.ups = append(r.ups, l.AtoB)
		r.macs = append(r.macs, ether.MakeMAC(5, i))
	}
	return r
}

func (r *fabRig) learnAll() {
	for i, up := range r.ups {
		up.Send(&ether.Frame{Src: r.macs[i], Dst: ether.Broadcast, Size: 60})
	}
	r.eng.Run(r.eng.Now() + sim.Second)
	for i := range r.log {
		r.log[i] = r.log[i][:0]
	}
	r.order = r.order[:0]
	r.fb.StartWindow()
}

func (r *fabRig) drain() { r.eng.Run(r.eng.Now() + 10*sim.Second) }

// Every topology preset must deliver any-to-any unicast exactly once
// after the forwarding databases are primed, across leaf, pod and core
// boundaries alike.
func TestFabricConnectivity(t *testing.T) {
	specs := []FabricSpec{
		{Kind: KindToR},
		{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 2},
		{Kind: KindLeafSpine, HostsPerLeaf: 1, Spines: 3},
		{Kind: KindFatTree, HostsPerLeaf: 2, Spines: 2},
		{Kind: KindFatTree, HostsPerLeaf: 1, Spines: 2},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Kind.String()+spec.Suffix(), func(t *testing.T) {
			const hosts = 6
			r := newFabRig(t, hosts, 1, DefaultParams(), spec)
			r.learnAll()
			n := 0
			for s := 0; s < hosts; s++ {
				for d := 0; d < hosts; d++ {
					if s == d {
						continue
					}
					r.ups[s].Send(&ether.Frame{Src: r.macs[s], Dst: r.macs[d], Size: 900, Payload: n})
					n++
					r.drain()
				}
			}
			for d := 0; d < hosts; d++ {
				if got := len(r.log[d]); got != hosts-1 {
					t.Fatalf("host %d received %d unicasts, want %d", d, got, hosts-1)
				}
			}
			if r.fb.DropsWindow() != 0 {
				t.Fatalf("paced unicast sweep dropped %d frames", r.fb.DropsWindow())
			}
		})
	}
}

// Broadcast in a multi-rooted Clos must reach every other endpoint
// exactly once — the valley-free one-uplink flood rule and the fat-tree
// core stripe must prevent both loops and duplicates.
func TestFabricBroadcastNoDuplicates(t *testing.T) {
	specs := []FabricSpec{
		{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 3},
		{Kind: KindFatTree, HostsPerLeaf: 2, Spines: 2},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Kind.String(), func(t *testing.T) {
			const hosts = 8
			r := newFabRig(t, hosts, 1, DefaultParams(), spec)
			for s := 0; s < hosts; s++ {
				r.ups[s].Send(&ether.Frame{Src: r.macs[s], Dst: ether.Broadcast, Size: 60, Payload: s})
				r.drain()
				for d := 0; d < hosts; d++ {
					want := 1
					if d == s {
						want = 0
					}
					got := 0
					for _, f := range r.log[d] {
						if f.Payload == s {
							got++
						}
					}
					if got != want {
						t.Fatalf("broadcast from %d: host %d received %d copies, want %d", s, d, got, want)
					}
				}
			}
		})
	}
}

// The multi-switch extension of the fabric invariants property suite:
// randomized topology shapes and overloaded random traffic must show no
// duplication at any host, no reordering within a (src,dst) pair, and
// exact conservation — every frame copy terminates exactly once:
//
//	delivered + dropped + strayed == offered + (floodCopies - floods)
//
// where floodCopies-floods is the extra copies flooding created. Per
// port, Enqueued+Dropped remains exactly the forwarding decisions
// toward that port. Runs under -race and both scheduler tags in CI.
func TestFabricInvariantsProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed * 104729)
			spec := FabricSpec{
				Kind:         KindLeafSpine,
				HostsPerLeaf: 1 + rng.Intn(3),
				Spines:       1 + rng.Intn(3),
				Oversub:      1 + float64(rng.Intn(3)),
				Seed:         rng.Uint64(),
			}
			if seed%2 == 0 {
				spec.Kind = KindFatTree
			}
			hosts := 3 + rng.Intn(5)
			p := DefaultParams()
			p.EgressCap = 2 + rng.Intn(16)
			r := newFabRig(t, hosts, 1, p, spec)
			for i := range r.macs {
				r.macs[i] = ether.MakeMAC(1+rng.Intn(40), i)
			}
			r.learnAll()

			const frames = 2000
			type key struct{ src, dst int }
			sent := map[key][]int{}
			at := r.eng.Now()
			for i := 0; i < frames; i++ {
				src := rng.Intn(hosts)
				dst := rng.Intn(hosts)
				if dst == src {
					dst = (dst + 1) % hosts
				}
				k := key{src, dst}
				sent[k] = append(sent[k], i)
				f := &ether.Frame{Src: r.macs[src], Dst: r.macs[dst], Size: 200 + rng.Intn(1300), Payload: i}
				at += sim.Time(rng.Intn(6000))
				ii, ff := src, f
				r.eng.At(at, "test.offer", func() { r.ups[ii].Send(ff) })
			}
			r.eng.Run(at + sim.Second)
			r.drain()

			// No duplication at any host; reconstruct (src,dst) sequences.
			macHost := map[ether.MAC]int{}
			for i, m := range r.macs {
				macHost[m] = i
			}
			got := map[key][]int{}
			seenAtPort := map[[2]int]bool{}
			var delivered uint64
			for port, list := range r.log {
				for _, f := range list {
					id := f.Payload.(int)
					if seenAtPort[[2]int{port, id}] {
						t.Fatalf("frame %d duplicated at host %d", id, port)
					}
					seenAtPort[[2]int{port, id}] = true
					got[key{macHost[f.Src], port}] = append(got[key{macHost[f.Src], port}], id)
					delivered++
				}
			}
			// No reordering within a pair: each delivered sequence is a
			// subsequence of the sent one (drops punch holes, never swap).
			for k, ids := range got {
				pos := -1
				idx := map[int]int{}
				for i, id := range sent[k] {
					idx[id] = i
				}
				for _, id := range ids {
					p, ok := idx[id]
					if !ok {
						t.Fatalf("host %d got frame %d never sent on pair %v", k.dst, id, k)
					}
					if p <= pos {
						t.Fatalf("pair %v reordered: frame %d arrived after a later frame", k, id)
					}
					pos = p
				}
			}
			// Per-port conservation and full drain, across every switch.
			var enq, drop uint64
			for si := 0; si < r.fb.NumSwitches(); si++ {
				sw := r.fb.SwitchAt(si)
				for pi := 0; pi < sw.NumPorts(); pi++ {
					port := sw.Port(pi)
					if port.Depth() != 0 {
						t.Fatalf("switch %d port %d not drained: depth %d", si, pi, port.Depth())
					}
					enq += port.Enqueued.Window()
					drop += port.Dropped.Window()
				}
			}
			if drop != r.fb.DropsWindow() {
				t.Fatalf("drop ledgers disagree: ports %d, fabric %d", drop, r.fb.DropsWindow())
			}
			// Exact conservation: every copy terminates exactly once.
			extra := r.fb.FloodCopiesWindow() - r.fb.FloodedWindow()
			if delivered+drop+r.fb.StraysWindow() != frames+extra {
				t.Fatalf("conservation: delivered %d + dropped %d + strays %d != offered %d + flood extras %d",
					delivered, drop, r.fb.StraysWindow(), frames, extra)
			}
		})
	}
}

// ECMP path choice is a pure function of (seed, src, dst): the same rig
// replayed gives byte-identical delivery tables, and a different fabric
// seed spreads the same flows differently. With ≥2 spines a many-pair
// load must actually use more than one spine.
func TestFabricECMPDeterminism(t *testing.T) {
	run := func(seed uint64) (string, []uint64) {
		spec := FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 3, Seed: seed}
		r := newFabRig(t, 6, 1, DefaultParams(), spec)
		r.learnAll()
		at := r.eng.Now()
		rng := sim.NewRNG(42)
		for i := 0; i < 600; i++ {
			src := rng.Intn(6)
			dst := (src + 1 + rng.Intn(5)) % 6
			f := &ether.Frame{Src: r.macs[src], Dst: r.macs[dst], Size: 300 + rng.Intn(1000), Payload: i}
			at += sim.Time(rng.Intn(20000))
			ii, ff := src, f
			r.eng.At(at, "test.offer", func() { r.ups[ii].Send(ff) })
		}
		r.eng.Run(at + sim.Second)
		r.drain()
		table := ""
		for _, d := range r.order {
			table += fmt.Sprintf("%d<-%v@%d;", d.port, d.f.Payload, d.at)
		}
		// Per-spine forwarded counters fingerprint the ECMP spread.
		var spread []uint64
		for si := 0; si < r.fb.NumSwitches(); si++ {
			spread = append(spread, r.fb.SwitchAt(si).Forwarded().Window())
		}
		return table, spread
	}
	t1, s1 := run(7)
	t2, s2 := run(7)
	if t1 != t2 {
		t.Fatal("same seed produced different delivery tables")
	}
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Fatal("same seed produced different per-switch spreads")
	}
	// Spine switches are indices 3,4,5 (3 leaves then 3 spines): the
	// ECMP hash must spread pairs over more than one spine.
	busy := 0
	for _, n := range s1[3:] {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("ECMP used %d of 3 spines, want ≥2 (spread %v)", busy, s1[3:])
	}
	t3, _ := run(8)
	if t1 == t3 {
		t.Fatal("different fabric seeds produced identical delivery tables — seed not wired into the hash")
	}
}

// Oversubscription must bite: the same cross-leaf offered load delivers
// measurably less through a 4:1 oversubscribed leaf-spine than through
// a non-blocking one, with the missing frames accounted as trunk-port
// drops.
func TestFabricOversubscriptionSaturates(t *testing.T) {
	run := func(oversub float64) (delivered int, drops uint64) {
		spec := FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 1, Oversub: oversub}
		p := DefaultParams()
		p.EgressCap = 16
		r := newFabRig(t, 4, 1, p, spec)
		r.learnAll()
		// Hosts 0,1 (leaf 0) blast hosts 2,3 (leaf 1) at access line
		// rate: the shared trunk is the bottleneck iff oversubscribed.
		at := r.eng.Now()
		for i := 0; i < 400; i++ {
			for s := 0; s < 2; s++ {
				r.ups[s].Send(&ether.Frame{Src: r.macs[s], Dst: r.macs[s+2], Size: 1514, Payload: i})
			}
			at += 13 * sim.Microsecond // ~ one 1514B slot at 1 Gb/s
			r.eng.Run(at)
		}
		r.drain()
		return len(r.log[2]) + len(r.log[3]), r.fb.DropsWindow()
	}
	dFast, dropsFast := run(1)
	dSlow, dropsSlow := run(4)
	if dSlow >= dFast {
		t.Fatalf("4:1 oversubscription delivered %d ≥ non-blocking %d", dSlow, dFast)
	}
	if dropsSlow == 0 {
		t.Fatal("oversubscribed trunk never dropped under sustained overload")
	}
	if dropsFast != 0 {
		t.Fatalf("non-blocking fabric dropped %d frames at matched offered load", dropsFast)
	}
}

// Host-port failure through the fabric is dead in both directions on
// the owning leaf, and the global port index maps across leaves.
func TestFabricFailPortBothDirections(t *testing.T) {
	spec := FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 2}
	r := newFabRig(t, 4, 1, DefaultParams(), spec)
	r.learnAll()
	r.fb.FailPort(3) // host 3 lives on the second leaf
	for i := 0; i < 10; i++ {
		r.ups[3].Send(&ether.Frame{Src: r.macs[3], Dst: r.macs[0], Size: 300})
		r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[3], Size: 300})
	}
	r.drain()
	if got := len(r.log[0]); got != 0 {
		t.Fatalf("dead host 3 leaked %d frames to host 0", got)
	}
	if got := len(r.log[3]); got != 0 {
		t.Fatalf("host 3's dead port delivered %d frames", got)
	}
	if r.fb.DropsWindow() == 0 {
		t.Fatal("dead-port traffic not accounted as drops")
	}
	r.fb.RestorePort(3)
	r.ups[3].Send(&ether.Frame{Src: r.macs[3], Dst: r.macs[0], Size: 300})
	r.drain()
	if got := len(r.log[0]); got != 1 {
		t.Fatalf("restored port delivered %d frames to host 0, want 1", got)
	}
}

// Spec parsing, validation and construction errors.
func TestFabricSpecValidation(t *testing.T) {
	for _, s := range []string{"tor", "leafspine", "fattree"} {
		k, err := ParseFabricKind(s)
		if err != nil || k.String() != s {
			t.Fatalf("kind %q round-trip: %v %v", s, k, err)
		}
	}
	if _, err := ParseFabricKind("mesh"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	bad := []FabricSpec{
		{Kind: FabricKind(9)},
		{Kind: KindLeafSpine, HostsPerLeaf: -1},
		{Kind: KindLeafSpine, Spines: -2},
		{Kind: KindLeafSpine, Oversub: -0.5},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Fatalf("spec %+v validated, want error", spec)
		}
		if _, err := NewFabric(sim.New(), DefaultParams(), spec, 2, 1, 0); err == nil {
			t.Fatalf("NewFabric accepted invalid spec %+v", spec)
		}
	}
	if _, err := NewFabric(sim.New(), Params{LinkGbps: -1}, FabricSpec{}, 2, 1, 0); err == nil {
		t.Fatal("NewFabric accepted invalid Params")
	}
	if _, err := NewFabric(sim.New(), DefaultParams(), FabricSpec{}, 0, 1, 0); err == nil {
		t.Fatal("NewFabric accepted zero hosts")
	}
	// Defaults: zero spec fields fill in, ToR suffix stays empty so
	// existing experiment names are unchanged.
	fb, err := NewFabric(sim.New(), DefaultParams(), FabricSpec{Kind: KindLeafSpine}, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := fb.Spec(); got.HostsPerLeaf != 2 || got.Spines != 2 || got.Oversub != 1 {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if (FabricSpec{}).Suffix() != "" {
		t.Fatal("ToR suffix must be empty")
	}
	if s := (FabricSpec{Kind: KindLeafSpine, Oversub: 4}).Suffix(); s != "-leafspine-l2-s2-o4" {
		t.Fatalf("suffix = %q", s)
	}
}

// A ToR-kind fabric is one Switch with bridge semantics: its counters,
// ports and fault handling behave exactly like the classic single
// switch (the golden tables of PRs 6–9 ride on this).
func TestFabricToRMatchesSwitch(t *testing.T) {
	r := newFabRig(t, 3, 1, DefaultParams(), FabricSpec{})
	if r.fb.NumSwitches() != 1 || r.fb.NumTrunks() != 0 {
		t.Fatalf("ToR fabric has %d switches, %d trunks", r.fb.NumSwitches(), r.fb.NumTrunks())
	}
	r.learnAll()
	r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 1514})
	r.drain()
	if len(r.log[2]) != 1 || r.fb.ForwardedWindow() != 1 || r.fb.FloodedWindow() != 0 {
		t.Fatalf("ToR unicast: deliveries %d, forwarded %d, flooded %d",
			len(r.log[2]), r.fb.ForwardedWindow(), r.fb.FloodedWindow())
	}
}

// Fabric snapshot round-trip: capture mid-flight, restore into a fresh
// identically-shaped fabric, and the forwarding databases, counters and
// queued frames all carry over.
func TestFabricSnapshotRoundTrip(t *testing.T) {
	spec := FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 2, Seed: 11}
	build := func() *fabRig { return newFabRig(t, 4, 1, DefaultParams(), spec) }
	r := build()
	r.learnAll()
	for i := 0; i < 50; i++ {
		r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 1514})
	}
	r.eng.Run(r.eng.Now() + 100*sim.Microsecond) // leave frames in flight

	st, err := r.fb.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	r2 := build()
	if err := r2.fb.SetState(st, nil); err != nil {
		t.Fatal(err)
	}
	if r.fb.InputsWindow() != r2.fb.InputsWindow() || r.fb.ForwardedWindow() != r2.fb.ForwardedWindow() {
		t.Fatal("restored fabric counters differ")
	}
	if si, pi := r2.fb.Lookup(r.macs[0]); si < 0 || pi < 0 {
		t.Fatal("restored fabric lost the forwarding database")
	}
	// Shape mismatch is rejected.
	r3 := newFabRig(t, 4, 1, DefaultParams(), FabricSpec{Kind: KindLeafSpine, HostsPerLeaf: 2, Spines: 1})
	if err := r3.fb.SetState(st, nil); err == nil {
		t.Fatal("mismatched fabric shape accepted a snapshot")
	}
}
