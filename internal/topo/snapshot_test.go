package topo

import (
	"reflect"
	"testing"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

// fabricImage captures everything a rig checkpoint needs: the switch,
// every pipe in both directions, and the engine's pending events.
type fabricImage struct {
	sw   SwitchState
	ups  []ether.PipeState
	down []ether.PipeState
	eng  sim.EngineState
}

func (r *rig) capture(t *testing.T) fabricImage {
	t.Helper()
	var img fabricImage
	var err error
	if img.sw, err = r.sw.State(nil); err != nil {
		t.Fatal(err)
	}
	for i, up := range r.ups {
		us, err := up.State(nil)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := r.sw.Port(i).Out().State(nil)
		if err != nil {
			t.Fatal(err)
		}
		img.ups = append(img.ups, us)
		img.down = append(img.down, ds)
	}
	if img.eng, err = r.eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	return img
}

func (r *rig) restore(t *testing.T, img fabricImage) {
	t.Helper()
	if err := r.sw.SetState(img.sw, nil); err != nil {
		t.Fatal(err)
	}
	for i := range r.ups {
		if err := r.ups[i].SetState(img.ups[i], nil); err != nil {
			t.Fatal(err)
		}
		if err := r.sw.Port(i).Out().SetState(img.down[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.eng.Restore(img.eng); err != nil {
		t.Fatal(err)
	}
}

// TestSwitchSnapshotContinuation checkpoints a congested fabric
// mid-incast — frames waiting out the forwarding latency, a deep
// egress FIFO, bits on the wire — restores it into a freshly built
// rig, and requires the remaining deliveries to land on the same ports
// at the same instants.
func TestSwitchSnapshotContinuation(t *testing.T) {
	a := newRig(t, 3, DefaultParams())
	a.learnAll()
	for i := 0; i < 16; i++ {
		a.ups[0].Send(&ether.Frame{Src: a.macs[0], Dst: a.macs[2], Size: 1514})
		a.ups[1].Send(&ether.Frame{Src: a.macs[1], Dst: a.macs[2], Size: 1514})
	}
	a.eng.Run(a.eng.Now() + 60*sim.Microsecond)
	if a.sw.Port(2).Depth() == 0 {
		t.Fatal("snapshot point is not congested — the test would prove nothing")
	}
	img := a.capture(t)

	b := newRig(t, 3, DefaultParams())
	b.restore(t, img)

	mark := len(a.order)
	a.drain()
	b.drain()
	want := a.order[mark:]
	if len(want) == 0 {
		t.Fatal("nothing left to deliver after the snapshot point")
	}
	if len(b.order) != len(want) {
		t.Fatalf("resumed rig delivered %d frames, want %d", len(b.order), len(want))
	}
	for i, w := range want {
		g := b.order[i]
		if g.port != w.port || g.at != w.at || *g.f != *w.f {
			t.Fatalf("delivery %d: got port %d at %v (%+v), want port %d at %v (%+v)",
				i, g.port, g.at, g.f, w.port, w.at, w.f)
		}
	}

	// Both drained fabrics now image identically.
	as, err := a.sw.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := b.sw.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(as, bs) {
		t.Fatalf("drained switch images differ:\n%+v\n%+v", as, bs)
	}
}

// TestSwitchStateCodecErrors pins that payload-bearing frames are
// uncheckpointable without a codec wherever they sit inside the switch:
// waiting out the forwarding latency or queued on a congested egress.
func TestSwitchStateCodecErrors(t *testing.T) {
	r := newRig(t, 3, DefaultParams())
	r.learnAll()

	// One payload frame mid-forwarding-latency: a 1514-byte frame takes
	// ~12.1 us to serialize onto the GbE uplink, then sits in the pend
	// queue for the 2 us ForwardLatency.
	t0 := r.eng.Now()
	r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 1514, Payload: 7})
	r.eng.Run(t0 + 13*sim.Microsecond)
	if _, err := r.sw.State(nil); err == nil {
		t.Fatal("captured a pend-queue payload frame with no codec")
	}
	r.drain()

	// Two simultaneous payload frames toward one port: past the
	// forwarding latency, the loser waits in the egress FIFO.
	t1 := r.eng.Now()
	r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 1514, Payload: 7})
	r.ups[1].Send(&ether.Frame{Src: r.macs[1], Dst: r.macs[2], Size: 1514, Payload: 7})
	r.eng.Run(t1 + 16*sim.Microsecond)
	if _, err := r.sw.State(nil); err == nil {
		t.Fatal("captured an egress-queue payload frame with no codec")
	}
	r.drain()

	// Restore sides of the same contract.
	st, err := r.sw.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := st
	bad.PendQ = []PendingState{{Frame: ether.FrameState{Size: 60, Payload: []byte{1}}}}
	if err := r.sw.SetState(bad, nil); err == nil {
		t.Fatal("restored a pend-queue payload image with no codec")
	}
	bad = st
	bad.Ports = append([]PortState(nil), st.Ports...)
	bad.Ports[0].Queue = []ether.FrameState{{Size: 60, Payload: []byte{1}}}
	if err := r.sw.SetState(bad, nil); err == nil {
		t.Fatal("restored an egress-queue payload image with no codec")
	}
	// The rig stays usable: restore the clean image.
	if err := r.sw.SetState(st, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewDefaultsEgressCap(t *testing.T) {
	s := New(sim.New(), Params{LinkGbps: 1.0})
	if got, want := s.Params().EgressCap, DefaultParams().EgressCap; got != want {
		t.Fatalf("EgressCap defaulted to %d, want %d", got, want)
	}
}

func TestSwitchSetStateRosterMismatch(t *testing.T) {
	a := newRig(t, 3, DefaultParams())
	st, err := a.sw.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	b := newRig(t, 2, DefaultParams())
	if err := b.sw.SetState(st, nil); err == nil {
		t.Fatal("restored a 3-port image into a 2-port switch")
	}
}

func TestFailPortDiscardsAndUnlearns(t *testing.T) {
	r := newRig(t, 3, DefaultParams())
	if r.sw.Params() != DefaultParams() {
		t.Fatalf("Params = %+v", r.sw.Params())
	}
	r.learnAll()
	for i := 0; i < 12; i++ {
		r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 1514})
		r.ups[1].Send(&ether.Frame{Src: r.macs[1], Dst: r.macs[2], Size: 1514})
	}
	r.eng.Run(r.eng.Now() + 60*sim.Microsecond)
	if r.sw.Port(2).Depth() == 0 {
		t.Fatal("victim queue empty — failure would discard nothing")
	}

	drops := r.sw.Drops.Total()
	r.sw.FailPort(2)
	if !r.sw.Port(2).Failed() {
		t.Fatal("port not marked failed")
	}
	if r.sw.Port(2).Depth() != 0 {
		t.Fatal("failed port kept queued frames")
	}
	if r.sw.Drops.Total() <= drops {
		t.Fatal("discarded queue not counted as drops")
	}
	if r.sw.Lookup(r.macs[2]) != -1 {
		t.Fatal("station behind the failed port still learned")
	}

	// Bits already on the wire at failure time still land; let them
	// drain before asserting the port goes silent.
	r.drain()
	r.log[2] = nil

	// Traffic toward the unlearned station floods; the copy aimed at
	// the failed port drops, the rest deliver.
	flooded := r.sw.Flooded().Total()
	r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 60})
	r.drain()
	if r.sw.Flooded().Total() <= flooded {
		t.Fatal("unknown-unicast did not flood after Unlearn")
	}
	if n := len(r.log[2]); n != 0 {
		t.Fatalf("failed port delivered %d frames", n)
	}

	// Healing: the station re-learns from its next transmission and
	// unicast resumes.
	r.sw.RestorePort(2)
	if r.sw.Port(2).Failed() {
		t.Fatal("port still failed after RestorePort")
	}
	r.ups[2].Send(&ether.Frame{Src: r.macs[2], Dst: r.macs[0], Size: 60})
	r.drain()
	if r.sw.Lookup(r.macs[2]) != 2 {
		t.Fatal("station not re-learned after healing")
	}
	before := len(r.log[1])
	r.ups[0].Send(&ether.Frame{Src: r.macs[0], Dst: r.macs[2], Size: 60})
	r.drain()
	if len(r.log[1]) != before {
		t.Fatal("post-heal unicast still flooding")
	}
	if r.sw.Moves().Total() != 0 {
		// Same-port re-learning is not a station move; the Moves counter
		// only fires when a MAC reappears behind a different port.
		t.Fatalf("Moves = %d on a fixed topology", r.sw.Moves().Total())
	}
}
