package topo_test

import (
	"testing"

	"cdna/internal/topo/topobench"
)

// The switch hot path, runnable via `go test -bench` (CI's short
// benchmark smoke); cmd/cdnabench runs the same function for the
// committed BENCH_sim.json row.
func BenchmarkSwitchForward(b *testing.B) { topobench.Forward(b) }
