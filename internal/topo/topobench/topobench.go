// Package topobench holds the switch hot-path benchmark in plain
// func(*testing.B) form, so cmd/cdnabench can run it through
// testing.Benchmark and `go test -bench` can wrap it — the same
// split internal/sim/simbench uses for the event core.
package topobench

import (
	"testing"

	"cdna/internal/ether"
	"cdna/internal/sim"
	"cdna/internal/topo"
)

// Forward measures one store-and-forward traversal per op: ingress
// Input → forwarding decision → bounded egress FIFO → line-rate
// serialization → delivery (three to four pooled events). The hot path
// must report zero allocs/op: pending frames ride a reused FIFO,
// callbacks are bound at construction, and the event core pools its
// events.
func Forward(b *testing.B) {
	eng := sim.New()
	p := topo.DefaultParams()
	sw := topo.New(eng, p)
	const n = 8
	macs := make([]ether.MAC, n)
	for i := 0; i < n; i++ {
		l := ether.NewDuplex(eng, p.LinkGbps, p.PropDelay)
		sw.AddPort(l.AtoB, l.BtoA)
		l.BtoA.Connect(ether.PortFunc(func(f *ether.Frame) {}))
		macs[i] = ether.MakeMAC(5, i)
	}
	// Learn every station, then prime queues and pools to working depth.
	for i := 0; i < n; i++ {
		sw.Input(i, &ether.Frame{Src: macs[i], Dst: ether.Broadcast, Size: 60})
	}
	drain := func() { eng.Run(eng.Now() + 10*sim.Second) }
	drain()
	f := &ether.Frame{Src: macs[0], Dst: macs[4], Size: 1514}
	for i := 0; i < 64; i++ {
		sw.Input(0, f)
	}
	drain()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Input(0, f)
		drain()
	}
}
