package topo

import (
	"fmt"

	"cdna/internal/ether"
	"cdna/internal/stats"
)

// PendingState is one frame waiting out the forwarding latency.
type PendingState struct {
	Frame ether.FrameState
	In    int32
}

// PortState is one switch port's checkpoint image. The armed txdone
// timer rides the engine snapshot.
type PortState struct {
	Busy     bool
	Failed   bool
	Queue    []ether.FrameState
	MaxDepth int
	Enqueued stats.CounterState
	Dropped  stats.CounterState
}

// SwitchState is the whole switch's checkpoint image.
type SwitchState struct {
	Bridge ether.BridgeState
	PendQ  []PendingState
	Ports  []PortState
	Inputs stats.CounterState
	Drops  stats.CounterState
	Strays stats.CounterState
}

// State captures the switch.
func (s *Switch) State(codec ether.PayloadCodec) (SwitchState, error) {
	st := SwitchState{
		Bridge: s.bridge.State(),
		PendQ:  make([]PendingState, s.pendQ.Len()),
		Ports:  make([]PortState, len(s.ports)),
		Inputs: s.Inputs.State(),
		Drops:  s.Drops.State(),
		Strays: s.Strays.State(),
	}
	for i := 0; i < s.pendQ.Len(); i++ {
		pf := s.pendQ.At(i)
		fs, err := ether.CaptureFrame(pf.f, codec)
		if err != nil {
			return SwitchState{}, err
		}
		st.PendQ[i] = PendingState{Frame: fs, In: pf.in}
	}
	for i, p := range s.ports {
		q, err := ether.CaptureFrameFIFO(&p.q, codec)
		if err != nil {
			return SwitchState{}, err
		}
		st.Ports[i] = PortState{
			Busy:     p.busy,
			Failed:   p.failed,
			Queue:    q,
			MaxDepth: p.maxDepth,
			Enqueued: p.Enqueued.State(),
			Dropped:  p.Dropped.State(),
		}
	}
	return st, nil
}

// SetState restores the switch into a freshly built fabric with the
// same port count.
func (s *Switch) SetState(st SwitchState, codec ether.PayloadCodec) error {
	if len(st.Ports) != len(s.ports) {
		return fmt.Errorf("topo: port roster mismatch: snapshot has %d, machine has %d",
			len(st.Ports), len(s.ports))
	}
	s.bridge.SetState(st.Bridge)
	s.pendQ.Clear()
	for _, ps := range st.PendQ {
		f, err := ether.RestoreFrame(ps.Frame, codec)
		if err != nil {
			return err
		}
		s.pendQ.Push(pending{f: f, in: ps.In})
	}
	for i, ps := range st.Ports {
		p := s.ports[i]
		p.busy = ps.Busy
		p.failed = ps.Failed
		if err := ether.RestoreFrameFIFO(&p.q, ps.Queue, codec); err != nil {
			return err
		}
		p.maxDepth = ps.MaxDepth
		p.Enqueued.SetState(ps.Enqueued)
		p.Dropped.SetState(ps.Dropped)
	}
	s.Inputs.SetState(st.Inputs)
	s.Drops.SetState(st.Drops)
	s.Strays.SetState(st.Strays)
	return nil
}

// FabricState is a whole multi-switch fabric's checkpoint image: one
// switch image per member, in builder order, plus the in-flight state
// of every trunk pipe (host-facing access links belong to their host's
// image, but trunks are owned by the fabric). Topology (tier wiring, up
// flags, ECMP seeds) is reconstructed from configuration, not captured.
type FabricState struct {
	Switches []SwitchState
	Trunks   []ether.PipeState
}

// State captures every switch and trunk of the fabric.
func (fb *Fabric) State(codec ether.PayloadCodec) (FabricState, error) {
	st := FabricState{
		Switches: make([]SwitchState, len(fb.switches)),
		Trunks:   make([]ether.PipeState, len(fb.trunks)),
	}
	for i, sw := range fb.switches {
		ss, err := sw.State(codec)
		if err != nil {
			return FabricState{}, err
		}
		st.Switches[i] = ss
	}
	for i, tr := range fb.trunks {
		ts, err := tr.State(codec)
		if err != nil {
			return FabricState{}, err
		}
		st.Trunks[i] = ts
	}
	return st, nil
}

// SetState restores every switch and trunk into a freshly built fabric
// with the same shape.
func (fb *Fabric) SetState(st FabricState, codec ether.PayloadCodec) error {
	if len(st.Switches) != len(fb.switches) {
		return fmt.Errorf("topo: fabric roster mismatch: snapshot has %d switches, machine has %d",
			len(st.Switches), len(fb.switches))
	}
	if len(st.Trunks) != len(fb.trunks) {
		return fmt.Errorf("topo: trunk roster mismatch: snapshot has %d trunks, machine has %d",
			len(st.Trunks), len(fb.trunks))
	}
	for i, sw := range fb.switches {
		if err := sw.SetState(st.Switches[i], codec); err != nil {
			return err
		}
	}
	for i, tr := range fb.trunks {
		if err := tr.SetState(st.Trunks[i], codec); err != nil {
			return err
		}
	}
	return nil
}
