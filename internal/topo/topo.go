// Package topo is the multi-host topology layer: a simulated top-of-rack
// switch that connects N benchmark hosts onto one shared fabric. It is a
// store-and-forward extension of the learning bridge in internal/ether —
// the switch reuses ether.Bridge verbatim for its forwarding database and
// flood semantics — with the two things a software bridge inside a driver
// domain does not have: per-port egress serialization onto a real
// ether.Pipe link, and bounded per-port egress FIFOs that tail-drop under
// fan-in overload (the incast regime) with full drop/backpressure
// accounting.
//
// The switch is hardware: it charges no CPU to any host. Its costs are
// pure latency and queueing — a fixed store-and-forward ForwardLatency
// per frame between full-frame reception and the egress enqueue, then
// line-rate serialization (plus link propagation) out the egress pipe.
// Ingress needs no queue of its own: a frame arrives from an ingress
// pipe only once its last bit is in, so the ingress pipe *is* the
// store-and-forward receive buffer. The hot path allocates nothing in
// steady state: pending frames ride a sim.FIFO, forwarding and
// per-port transmit-done callbacks are bound once at construction, and
// the pooled event core does the rest.
package topo

import (
	"fmt"

	"cdna/internal/ether"
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// Params are the fabric constants. They are properties of the simulated
// rack hardware, not of the paper's calibrated host model.
type Params struct {
	// LinkGbps is the access-link rate between each host NIC and its
	// switch port (1 Gb/s, matching the single-host evaluation links).
	LinkGbps float64
	// PropDelay is the one-way cable propagation delay per access link.
	PropDelay sim.Time
	// ForwardLatency is the switch's fixed per-frame processing delay
	// between full-frame reception on ingress and the egress enqueue —
	// the "forwarding" half of store-and-forward (the "store" half is
	// the ingress link's own last-bit serialization).
	ForwardLatency sim.Time
	// EgressCap bounds each port's egress FIFO in frames; a frame
	// arriving at a full queue is tail-dropped and counted.
	EgressCap int
}

// DefaultParams returns the standard rack fabric: GbE access links with
// the same 500 ns propagation the single-host testbed links use, a 2 us
// store-and-forward processing latency, and a 128-frame egress queue per
// port (a shallow-buffered ToR).
func DefaultParams() Params {
	return Params{
		LinkGbps:       1.0,
		PropDelay:      500 * sim.Nanosecond,
		ForwardLatency: 2 * sim.Microsecond,
		EgressCap:      128,
	}
}

// Validate rejects parameter sets that would produce silently nonsense
// schedules: a non-positive link rate serializes frames in zero or
// negative time, and negative delays schedule events into the past.
// EgressCap <= 0 stays legal — New defaults it — because "unset" is a
// meaningful request for the standard shallow-buffered queue.
func (p Params) Validate() error {
	if p.LinkGbps <= 0 {
		return fmt.Errorf("topo: LinkGbps must be positive, got %g", p.LinkGbps)
	}
	if p.PropDelay < 0 {
		return fmt.Errorf("topo: PropDelay must be non-negative, got %v", p.PropDelay)
	}
	if p.ForwardLatency < 0 {
		return fmt.Errorf("topo: ForwardLatency must be non-negative, got %v", p.ForwardLatency)
	}
	return nil
}

// pending is one fully received frame waiting out the switch's
// forwarding latency.
type pending struct {
	f  *ether.Frame
	in int32
}

// Switch is the store-and-forward top-of-rack switch. Create it with
// New, then AddPort each host link.
type Switch struct {
	eng    *sim.Engine
	p      Params
	bridge *ether.Bridge // forwarding database + unicast/flood decision
	ports  []*Port

	// Frames between full reception and the forwarding decision.
	// ForwardLatency is constant, so completion order is issue order and
	// one bound callback serves every frame.
	pendQ     sim.FIFO[pending]
	forwardFn sim.Fn

	// Multi-tier routing state (empty for a classic single-tier ToR,
	// which keeps pure learning-bridge semantics): uplinks lists the
	// up-facing trunk ports, and ecmpSeed salts the (src,dst) hash that
	// spreads remote-bound flows over them.
	uplinks  []int32
	ecmpSeed uint64

	// Inputs counts frames the switch received (post store-and-forward).
	Inputs stats.Counter
	// Drops counts egress tail drops across all ports.
	Drops stats.Counter
	// Strays counts frames that arrived on an uplink for a destination
	// also learned on an uplink: valley-free routing never re-ascends,
	// so they are released (a transient of flood-time misdelivery or a
	// station move mid-flight).
	Strays stats.Counter
}

// New creates an empty switch on the engine. Params must pass Validate
// (construction panics with the validation error otherwise — a
// misconfigured fabric is a programming error, and callers that accept
// external configuration validate before building).
func New(eng *sim.Engine, p Params) *Switch {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.EgressCap <= 0 {
		p.EgressCap = DefaultParams().EgressCap
	}
	s := &Switch{eng: eng, p: p, bridge: ether.NewBridge()}
	s.forwardFn = eng.Bind(s.forward)
	return s
}

// Params returns the fabric constants the switch was built with.
func (s *Switch) Params() Params { return s.p }

// Port is one switch port: the egress FIFO and the transmit pacing onto
// the port's downstream pipe.
type Port struct {
	sw   *Switch
	id   int
	out  *ether.Pipe
	q    sim.FIFO[*ether.Frame]
	busy bool
	// failed marks a dead port (fault injection): forwarding decisions
	// toward it drop, frames arriving on its ingress drop, and its
	// queued frames were discarded at failure.
	failed bool
	// up marks an up-facing trunk port of a multi-tier switch: remote
	// destinations are reached through the ECMP-balanced uplink set,
	// and frames arriving from above never go back up (valley-free).
	up bool
	// txDone fires when the egress pipe finishes serializing the current
	// frame, freeing the wire for the next queued one.
	txDone *sim.Timer

	// Enqueued counts frames accepted into the egress FIFO; Dropped
	// counts tail drops. Enqueued = delivered + still-queued, and
	// Enqueued + Dropped = forwarding decisions toward this port — the
	// conservation ledger the property tests check.
	Enqueued stats.Counter
	Dropped  stats.Counter
	maxDepth int
}

// AddPort attaches a full-duplex host link. in carries frames from the
// host toward the switch (the switch connects its ingress handler to
// it); out carries frames toward the host — the switch is its only
// sender and paces it at line rate through the bounded egress FIFO. The
// caller connects out's destination (the host NIC's Receive). in may be
// nil for a port that only ever transmits (a sink in tests).
func (s *Switch) AddPort(in, out *ether.Pipe) int {
	p := &Port{sw: s, id: len(s.ports), out: out}
	p.txDone = s.eng.NewTimer("topo.txdone", p.onWireFree)
	s.ports = append(s.ports, p)
	s.bridge.AddPort(p)
	if in != nil {
		in.Connect(ether.PortFunc(func(f *ether.Frame) { s.Input(p.id, f) }))
	}
	return p.id
}

// AddUplink attaches a full-duplex trunk toward the tier above and
// marks the port up-facing. A switch with at least one uplink routes
// valley-free with ECMP instead of flat bridge semantics (see route).
// Wiring is identical to AddPort: in carries frames from the upper
// switch down to this one, out carries frames up.
func (s *Switch) AddUplink(in, out *ether.Pipe) int {
	id := s.AddPort(in, out)
	s.ports[id].up = true
	s.uplinks = append(s.uplinks, int32(id))
	return id
}

// SetECMPSeed salts the switch's (src,dst) uplink hash. Fabric builders
// derive it from the configured fabric seed and the switch's index, so
// different switches spread the same flow pair differently while any
// shard count replays the same choice.
func (s *Switch) SetECMPSeed(seed uint64) { s.ecmpSeed = seed }

// NumUplinks returns the number of up-facing trunk ports.
func (s *Switch) NumUplinks() int { return len(s.uplinks) }

// NumPorts returns the number of attached ports.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Port returns port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Lookup returns the port the switch has learned for a MAC, or -1.
func (s *Switch) Lookup(m ether.MAC) int { return s.bridge.Lookup(m) }

// Forwarded returns the bridge's known-unicast counter.
func (s *Switch) Forwarded() *stats.Counter { return &s.bridge.Forwarded }

// Flooded returns the bridge's unknown-unicast/broadcast counter.
func (s *Switch) Flooded() *stats.Counter { return &s.bridge.Flooded }

// Moves returns the bridge's station-move counter: source MACs
// re-learned on a different port. Port failures drive it — every
// station unlearned by FailPort re-learns on its next frame — so fault
// scenarios read it as the FDB-churn gauge.
func (s *Switch) Moves() *stats.Counter { return &s.bridge.Moves }

// Input accepts a fully received frame on ingress port `in`. The frame
// waits out the store-and-forward processing latency, then the bridge
// logic learns its source and resolves the egress port(s). Ingress
// pipes attached by AddPort call this; tests may call it directly.
//
// A failed port is dead in both directions: frames arriving on its
// ingress are dropped here — counted against the port and the switch,
// never reaching the bridge — so a host behind a dead port cannot keep
// injecting traffic or re-learning its MAC.
func (s *Switch) Input(in int, f *ether.Frame) {
	if p := s.ports[in]; p.failed {
		p.Dropped.Inc()
		s.Drops.Inc()
		f.Release()
		return
	}
	s.Inputs.Inc()
	s.pendQ.Push(pending{f: f, in: int32(in)})
	s.eng.AfterFn(s.p.ForwardLatency, "topo.forward", s.forwardFn)
}

// forward runs after ForwardLatency: standard learning-bridge semantics
// for a single-tier switch (the bridge's output ports being the bounded
// egress queues), valley-free ECMP routing for a switch with uplinks.
func (s *Switch) forward() {
	pf := s.pendQ.Pop()
	if len(s.uplinks) == 0 {
		s.bridge.Input(int(pf.in), pf.f)
		return
	}
	s.route(int(pf.in), pf.f)
}

// route is the forwarding decision of a multi-tier switch. It keeps the
// learning bridge's forwarding database and counters but adds the two
// rules that make a Clos fabric loop-free and balanced:
//
//   - valley-free: a frame that arrived on an up-facing port is only
//     ever forwarded down; if its destination is (still) learned on an
//     uplink, the frame is a stray and is released, never re-ascended.
//   - ECMP: a destination learned on any uplink is remote; the egress
//     uplink is hash(seed, src, dst) over the live uplink set — a pure
//     function of the flow pair, so each pair keeps one path (FIFO, no
//     reordering) at any shard count.
//
// Source learning stays unconditional, but a MAC flapping between two
// up-facing ports is not a station move — remote MACs legitimately
// appear on whichever uplink the sender's ECMP chose — so Moves counts
// only changes that involve a down-facing port.
func (s *Switch) route(in int, f *ether.Frame) {
	ip := s.ports[in]
	if !f.Src.IsBroadcast() {
		old := s.bridge.Learn(f.Src, in)
		if old >= 0 && old != in && !(ip.up && s.ports[old].up) {
			s.bridge.Moves.Inc()
		}
	}
	if !f.Dst.IsBroadcast() {
		if out := s.bridge.Lookup(f.Dst); out >= 0 {
			op := s.ports[out]
			switch {
			case !op.up && out != in:
				s.bridge.Forwarded.Inc()
				op.Receive(f)
			case !op.up:
				f.Release() // hairpin suppressed
			case !ip.up:
				s.bridge.Forwarded.Inc()
				s.ports[s.ecmpUplink(f)].Receive(f)
			default:
				s.Strays.Inc()
				f.Release()
			}
			return
		}
	}
	s.flood(in, f)
}

// flood delivers an unknown-unicast or broadcast frame to every
// down-facing port except ingress, plus — when the frame came from
// below — exactly one ECMP-chosen uplink. One copy per tier-crossing
// keeps a multi-rooted Clos flood loop-free and duplicate-free: the
// stripe wiring gives each lower switch a single port per upper
// subtree, and descending frames never re-ascend.
func (s *Switch) flood(in int, f *ether.Frame) {
	s.bridge.Flooded.Inc()
	up := -1
	if !s.ports[in].up {
		up = s.ecmpUplink(f)
	}
	n := 0
	for i, p := range s.ports {
		if i != in && (!p.up || i == up) {
			n++
		}
	}
	s.bridge.FloodCopies.Add(uint64(n))
	if n == 0 {
		f.Release()
		return
	}
	for i := 1; i < n; i++ {
		f.Retain()
	}
	for i, p := range s.ports {
		if i != in && (!p.up || i == up) {
			p.Receive(f)
		}
	}
}

// ecmpUplink picks the egress uplink for a flow pair: a deterministic
// hash of (seed, src, dst) over the non-failed uplinks, falling back to
// the full set (where the egress drop is then counted) when every
// uplink is down.
func (s *Switch) ecmpUplink(f *ether.Frame) int {
	live := 0
	for _, u := range s.uplinks {
		if !s.ports[u].failed {
			live++
		}
	}
	h := ecmpHash(s.ecmpSeed, f.Src, f.Dst)
	if live == 0 {
		return int(s.uplinks[h%uint64(len(s.uplinks))])
	}
	k := int(h % uint64(live))
	for _, u := range s.uplinks {
		if s.ports[u].failed {
			continue
		}
		if k == 0 {
			return int(u)
		}
		k--
	}
	return int(s.uplinks[0]) // unreachable
}

// ecmpHash mixes the flow pair with the switch's seed (splitmix64
// finalizer — the same stream sim.RNG uses, so quality is known and the
// value is a pure function of its inputs: byte-identical at any shard
// count and under any scheduler).
func ecmpHash(seed uint64, src, dst ether.MAC) uint64 {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	h := mix(seed + 0x9e3779b97f4a7c15)
	h = mix(h ^ macBits(src))
	h = mix(h ^ macBits(dst))
	return h
}

// macBits packs a MAC into the low 48 bits of a uint64.
func macBits(m ether.MAC) uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// Receive implements ether.Port for the embedded bridge's output side:
// a forwarding decision toward this port. Full queue = tail drop.
func (p *Port) Receive(f *ether.Frame) {
	if p.failed {
		p.Dropped.Inc()
		p.sw.Drops.Inc()
		f.Release()
		return
	}
	if p.q.Len() >= p.sw.p.EgressCap {
		p.Dropped.Inc()
		p.sw.Drops.Inc()
		f.Release()
		return
	}
	p.q.Push(f)
	p.Enqueued.Inc()
	if d := p.q.Len(); d > p.maxDepth {
		p.maxDepth = d
	}
	if !p.busy {
		p.startTx()
	}
}

// startTx puts the head-of-line frame on the wire and arms the
// wire-free timer for when its last bit leaves the switch.
func (p *Port) startTx() {
	f := p.q.Pop()
	p.busy = true
	p.out.Send(f)
	p.txDone.Arm(p.out.NextFree())
}

func (p *Port) onWireFree() {
	p.busy = false
	if p.q.Len() > 0 {
		p.startTx()
	}
}

// FailPort kills port i in both directions: its queued egress frames
// are discarded (and counted as drops), every station learned behind it
// is unlearned from the forwarding database — traffic toward those MACs
// floods until they are re-learned — and future forwarding decisions
// toward the port drop, as do frames arriving on its ingress. The frame
// currently serializing, if any, still delivers.
func (s *Switch) FailPort(i int) {
	p := s.ports[i]
	p.failed = true
	for p.q.Len() > 0 {
		p.q.Pop().Release()
		p.Dropped.Inc()
		s.Drops.Inc()
	}
	s.bridge.Unlearn(i)
}

// RestorePort brings a failed port back. Stations behind it are
// re-learned from their next frames.
func (s *Switch) RestorePort(i int) { s.ports[i].failed = false }

// Failed reports whether the port is failed.
func (p *Port) Failed() bool { return p.failed }

// Depth returns the current egress queue depth (excluding the frame on
// the wire).
func (p *Port) Depth() int { return p.q.Len() }

// MaxDepth returns the high-water mark of the egress queue since the
// last StartWindow (or since creation).
func (p *Port) MaxDepth() int { return p.maxDepth }

// Out returns the port's downstream pipe (for delivery accounting).
func (p *Port) Out() *ether.Pipe { return p.out }

// StartWindow resets the switch's windowed counters (total and
// per-port, including the egress-depth high-water marks), so warmup
// traffic is excluded from reported drop rates and queue depths.
func (s *Switch) StartWindow() {
	s.Inputs.StartWindow()
	s.Drops.StartWindow()
	s.Strays.StartWindow()
	s.bridge.Forwarded.StartWindow()
	s.bridge.Flooded.StartWindow()
	s.bridge.FloodCopies.StartWindow()
	s.bridge.Moves.StartWindow()
	for _, p := range s.ports {
		p.Enqueued.StartWindow()
		p.Dropped.StartWindow()
		p.maxDepth = p.q.Len()
	}
}
