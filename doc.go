// Package cdna is a full-system simulation study of Concurrent Direct
// Network Access (CDNA), reproducing "Concurrent Direct Network Access
// for Virtual Machine Monitors" (Willmann et al., HPCA 2007).
//
// The public entry points are the binaries in cmd/ and the runnable
// examples in examples/; the library lives under internal/ with the
// paper's contribution in internal/core and one package per substrate
// (see DESIGN.md for the inventory and EXPERIMENTS.md for the
// paper-vs-measured results).
package cdna
