package cdna

// One benchmark per table and figure of the paper's evaluation (§5),
// plus the ablations. Each iteration assembles the machine, runs warmup
// and a measurement window, and reports throughput (and the headline
// profile numbers) as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every result in miniature. cmd/cdnatables runs the same
// experiments at full length.

import (
	"testing"

	"cdna/internal/bench"
	"cdna/internal/core"
	"cdna/internal/sim/simbench"
)

// tableOpts picks the measurement windows for the full-system
// benchmarks: full-length windows by default, bench.Quick() under
// `go test -short` so CI benchmark smoke runs finish in seconds.
func tableOpts() bench.Opts {
	if testing.Short() {
		return bench.Quick()
	}
	return bench.Full()
}

func reportRow(b *testing.B, name string, r bench.Result) {
	b.ReportMetric(r.Mbps, name+":Mb/s")
}

func BenchmarkTable1NativeVsXen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Table1(tableOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Mbps, "native-tx:Mb/s")
		b.ReportMetric(results[1].Mbps, "xen-tx:Mb/s")
		b.ReportMetric(results[2].Mbps, "native-rx:Mb/s")
		b.ReportMetric(results[3].Mbps, "xen-rx:Mb/s")
	}
}

func BenchmarkTable2Transmit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Table2(tableOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Mbps, "xen-intel:Mb/s")
		b.ReportMetric(results[1].Mbps, "xen-ricenic:Mb/s")
		b.ReportMetric(results[2].Mbps, "cdna:Mb/s")
		b.ReportMetric(100*results[2].Profile.Idle, "cdna-idle:%")
	}
}

func BenchmarkTable3Receive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Table3(tableOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Mbps, "xen-intel:Mb/s")
		b.ReportMetric(results[1].Mbps, "xen-ricenic:Mb/s")
		b.ReportMetric(results[2].Mbps, "cdna:Mb/s")
		b.ReportMetric(100*results[2].Profile.Idle, "cdna-idle:%")
	}
}

func BenchmarkTable4Protection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Table4(tableOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*results[0].Profile.Hyp, "tx-prot-on-hyp:%")
		b.ReportMetric(100*results[1].Profile.Hyp, "tx-prot-off-hyp:%")
		b.ReportMetric(100*(results[1].Profile.Idle-results[0].Profile.Idle), "tx-idle-gain:%")
	}
}

// figureBench runs a reduced guest sweep (the full 8-point sweep lives
// in cmd/cdnatables).
func figureBench(b *testing.B, fig func(bench.Opts, []int) (t any, pts []bench.FigurePoint, err error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		_, pts, err := fig(tableOpts(), []int{1, 8, 24})
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.Xen.Mbps, "xen-24g:Mb/s")
		b.ReportMetric(last.CDNA.Mbps, "cdna-24g:Mb/s")
		b.ReportMetric(last.CDNA.Mbps/last.Xen.Mbps, "cdna/xen-24g:x")
	}
}

func BenchmarkFigure3TransmitScaling(b *testing.B) {
	figureBench(b, func(o bench.Opts, g []int) (any, []bench.FigurePoint, error) {
		t, pts, err := bench.Figure3(o, g)
		return t, pts, err
	})
}

func BenchmarkFigure4ReceiveScaling(b *testing.B) {
	figureBench(b, func(o bench.Opts, g []int) (any, []bench.FigurePoint, error) {
		t, pts, err := bench.Figure4(o, g)
		return t, pts, err
	})
}

func BenchmarkAblationInterrupts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.AblationInterrupts(tableOpts(), 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].PhysIRQPerSec, "bitvec-irq/s")
		b.ReportMetric(results[1].PhysIRQPerSec, "percontext-irq/s")
	}
}

func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.AblationBatching(tableOpts(), []int{1, 8, 0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*results[0].Profile.Hyp, "batch1-hyp:%")
		b.ReportMetric(100*results[len(results)-1].Profile.Hyp, "unlimited-hyp:%")
	}
}

func BenchmarkAblationIOMMU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.AblationIOMMU(tableOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*results[0].Profile.Hyp, "hypercall-hyp:%")
		b.ReportMetric(100*results[1].Profile.Hyp, "iommu-hyp:%")
	}
}

// BenchmarkSingleRun measures the simulator itself: events per wall
// second for the standard CDNA transmit configuration — the end-to-end
// companion to the internal/sim micro-benchmarks in BENCH_sim.json.
func BenchmarkSingleRun(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
		cfg.Protection = core.ModeHypercall
		cfg.Warmup = bench.Quick().Warmup
		cfg.Duration = bench.Quick().Duration
		res, err := bench.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineScheduleFire is the foundation-layer hot loop measured
// at the repository root so `go test -bench .` covers both altitudes;
// the body is shared with internal/sim and cmd/cdnabench via
// internal/sim/simbench.
func BenchmarkEngineScheduleFire(b *testing.B) { simbench.ScheduleFire(b) }
