GO ?= go

.PHONY: all build vet test check smoke topo-smoke snap-smoke daemon-smoke cover tables paper bench bench-check pprof clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: everything must build, vet and pass.
check: build vet test

# smoke runs a tiny campaign grid end-to-end through cdnasweep:
# two architectures x two directions with very short windows.
smoke:
	$(GO) run ./cmd/cdnasweep -modes xen,cdna -dirs tx,rx \
		-warmup 0.02 -duration 0.05 -workers 0 -json /dev/null

# topo-smoke drives the multi-host fabric end to end through cdnasweep:
# two architectures at two rack sizes under incast and all-to-all with
# very short windows, then the same rack over multi-tier fabrics
# (leaf-spine and fat-tree) and an open-loop leaf-spine run driven from
# a checked-in flow trace. Wired into CI next to smoke.
topo-smoke:
	$(GO) run ./cmd/cdnasweep -modes xen,cdna -dirs tx -hosts 2,4 \
		-patterns incast,all2all -warmup 0.02 -duration 0.05 -workers 0 -json /dev/null
	$(GO) run ./cmd/cdnasweep -modes xen,cdna -dirs tx -hosts 4 \
		-patterns incast -fabrics leafspine,fattree \
		-warmup 0.02 -duration 0.05 -workers 0 -json /dev/null
	$(GO) run ./cmd/cdnasim -mode cdna -hosts 4 -pattern incast -fabric leafspine \
		-workload trace -tracefile internal/workload/testdata/smoke_trace.csv \
		-warmup 0.02 -duration 0.05 > /dev/null

# snap-smoke drives the checkpoint/restore layer end to end through
# cdnasweep: a fault-scenario grid (link flap, switch-port failure,
# whole-fabric blackout) warm-start forked from one shared warmup
# snapshot, with very short windows. Wired into CI next to topo-smoke.
snap-smoke:
	$(GO) run ./cmd/cdnasweep -modes xen,cdna -dirs tx -hosts 3 \
		-patterns incast -faults none,linkflap,portfail,blackout \
		-warmfork -warmup 0.02 -duration 0.05 -workers 0 -json /dev/null

# daemon-smoke drives the campaign service end to end: a sweep daemon
# is started, a small sweep runs remotely, the daemon is drained and
# restarted on the same durable store, and the same sweep runs again —
# the restarted run must be served ≥95% from the store and its JSON
# must be byte-identical to the first run's. Wired into CI next to
# snap-smoke.
daemon-smoke:
	@set -e; \
	dir=$$(mktemp -d /tmp/cdnadsmoke.XXXXXX); \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) build -o $$dir/cdnasweep ./cmd/cdnasweep; \
	run() { $$dir/cdnasweep -remote -socket $$dir/d.sock -progress=false \
		-modes xen,cdna -dirs tx,rx -warmup 0.02 -duration 0.05 "$$@"; }; \
	$$dir/cdnasweep -daemon -socket $$dir/d.sock -store $$dir/store & pid=$$!; \
	run -json $$dir/a.json; \
	run -drain; wait $$pid; \
	$$dir/cdnasweep -daemon -socket $$dir/d.sock -store $$dir/store & pid=$$!; \
	run -json $$dir/b.json -require-hit-rate 0.95; \
	run -drain; wait $$pid; \
	cmp $$dir/a.json $$dir/b.json; \
	echo "daemon-smoke ok: restarted run fully cached, byte-identical JSON"

# cover is the ratcheted coverage gate for the fabric-critical packages
# (the switch, the bridge/link layer it extends, the event core under
# them, and the snapshot envelope). Floors only move up: raise them
# when coverage rises, never lower them to make a change pass. Current
# measured coverage is a few points above each floor.
cover:
	@set -e; \
	check() { \
		pct=$$($(GO) test -cover $$1 | grep -o 'coverage: [0-9.]*' | cut -d' ' -f2); \
		if [ -z "$$pct" ]; then echo "FAIL: no coverage reported for $$1"; exit 1; fi; \
		echo "$$1: $$pct% (floor $$2%)"; \
		ok=$$(awk -v p="$$pct" -v f="$$2" 'BEGIN{print (p+0 >= f+0) ? 1 : 0}'); \
		if [ "$$ok" != 1 ]; then echo "FAIL: $$1 coverage $$pct% below floor $$2%"; exit 1; fi; \
	}; \
	check ./internal/ether/ 90; \
	check ./internal/topo/ 92; \
	check ./internal/sim/ 92; \
	check ./internal/snap/ 90; \
	check ./internal/store/ 80; \
	check ./internal/daemon/ 72

# tables regenerates the paper's tables with short windows.
tables:
	$(GO) run ./cmd/cdnatables -quick

# paper reproduces the full evaluation as one parallel campaign.
paper:
	$(GO) run ./cmd/cdnasweep -preset paper -json results.json -csv results.csv

# bench measures the simulator itself (event-core micro-benchmarks +
# one end-to-end run) and records the perf trajectory in BENCH_sim.json.
# It runs twice — once with the reference heap queue (-tags simheap),
# once with the default hybrid near/far scheduler — so the committed
# artifact carries the hybrid vs. heap rows side by side. See
# EXPERIMENTS.md.
bench:
	$(GO) run -tags simheap ./cmd/cdnabench -out BENCH_heap.tmp.json
	$(GO) run ./cmd/cdnabench -ref BENCH_heap.tmp.json -out BENCH_sim.json
	rm -f BENCH_heap.tmp.json

# bench-check is the perf-regression gate: a short re-measurement
# compared against the committed BENCH_sim.json, failing on any
# ns/event metric more than BENCH_TOL percent worse (or any new
# steady-state allocation). The 15% default is meaningful on hardware
# comparable to the committed run's; CI overrides BENCH_TOL with a
# loose bound, because a shared runner being ~20% slower than the
# recording machine is normal variance, not a regression — there the
# gate catches order-of-magnitude slips and allocation creep.
BENCH_TOL ?= 15
bench-check:
	$(GO) run ./cmd/cdnabench -short -compare BENCH_sim.json -tol $(BENCH_TOL)

# pprof captures CPU and allocation profiles of the heaviest end-to-end
# scenario (4-host incast, sharded) into prof/. Inspect with
# `go tool pprof prof/cpu.out` / `go tool pprof prof/allocs.out`;
# EXPERIMENTS.md documents the workflow.
pprof:
	mkdir -p prof
	$(GO) run ./cmd/cdnasim -mode cdna -hosts 4 -pattern incast -shards 4 \
		-warmup 0.1 -duration 0.4 -cpuprofile prof/cpu.out -memprofile prof/allocs.out
	@echo "profiles written: prof/cpu.out prof/allocs.out"

clean:
	rm -f results.json results.csv BENCH_sim.json BENCH_heap.tmp.json
