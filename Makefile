GO ?= go

.PHONY: all build vet test check smoke tables paper bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: everything must build, vet and pass.
check: build vet test

# smoke runs a tiny campaign grid end-to-end through cdnasweep:
# two architectures x two directions with very short windows.
smoke:
	$(GO) run ./cmd/cdnasweep -modes xen,cdna -dirs tx,rx \
		-warmup 0.02 -duration 0.05 -workers 0 -json /dev/null

# tables regenerates the paper's tables with short windows.
tables:
	$(GO) run ./cmd/cdnatables -quick

# paper reproduces the full evaluation as one parallel campaign.
paper:
	$(GO) run ./cmd/cdnasweep -preset paper -json results.json -csv results.csv

# bench measures the simulator itself (event-core micro-benchmarks +
# one end-to-end run) and records the perf trajectory in BENCH_sim.json.
# See EXPERIMENTS.md for how to read it.
bench:
	$(GO) run ./cmd/cdnabench -out BENCH_sim.json

clean:
	rm -f results.json results.csv BENCH_sim.json
