GO ?= go

.PHONY: all build vet test check smoke tables paper bench bench-check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: everything must build, vet and pass.
check: build vet test

# smoke runs a tiny campaign grid end-to-end through cdnasweep:
# two architectures x two directions with very short windows.
smoke:
	$(GO) run ./cmd/cdnasweep -modes xen,cdna -dirs tx,rx \
		-warmup 0.02 -duration 0.05 -workers 0 -json /dev/null

# tables regenerates the paper's tables with short windows.
tables:
	$(GO) run ./cmd/cdnatables -quick

# paper reproduces the full evaluation as one parallel campaign.
paper:
	$(GO) run ./cmd/cdnasweep -preset paper -json results.json -csv results.csv

# bench measures the simulator itself (event-core micro-benchmarks +
# one end-to-end run) and records the perf trajectory in BENCH_sim.json.
# It runs twice — once with the reference heap queue (-tags simheap),
# once with the default timing wheel — so the committed artifact carries
# the wheel vs. heap rows side by side. See EXPERIMENTS.md.
bench:
	$(GO) run -tags simheap ./cmd/cdnabench -out BENCH_heap.tmp.json
	$(GO) run ./cmd/cdnabench -ref BENCH_heap.tmp.json -out BENCH_sim.json
	rm -f BENCH_heap.tmp.json

# bench-check is the perf-regression gate: a short re-measurement
# compared against the committed BENCH_sim.json, failing on any
# ns/event metric more than BENCH_TOL percent worse (or any new
# steady-state allocation). The 15% default is meaningful on hardware
# comparable to the committed run's; CI overrides BENCH_TOL with a
# loose bound, because a shared runner being ~20% slower than the
# recording machine is normal variance, not a regression — there the
# gate catches order-of-magnitude slips and allocation creep.
BENCH_TOL ?= 15
bench-check:
	$(GO) run ./cmd/cdnabench -short -compare BENCH_sim.json -tol $(BENCH_TOL)

clean:
	rm -f results.json results.csv BENCH_sim.json BENCH_heap.tmp.json
